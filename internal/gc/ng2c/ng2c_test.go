package ng2c

import (
	"testing"

	"polm2/internal/gc"
	"polm2/internal/heap"
	"polm2/internal/simclock"
)

func testConfig() Config {
	return Config{
		Heap: heap.Config{
			RegionSize: 16 * 1024,
			PageSize:   4096,
			MaxBytes:   64 * 16 * 1024,
		},
		YoungBytes:        8 * 16 * 1024,
		SurvivorFraction:  0.25,
		TenuringThreshold: 2,
		IHOP:              0.45,
		MaxMixedRegions:   4,
	}
}

func newCollector(t *testing.T) *Collector {
	t.Helper()
	c, err := New(simclock.New(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewGeneration(t *testing.T) {
	c := newCollector(t)
	if got := c.Generations(); got != 2 {
		t.Fatalf("initial generations = %d, want 2 (young+old)", got)
	}
	g1 := c.NewGeneration()
	g2 := c.NewGeneration()
	if g1 == g2 || g1 < firstDynamicGen || g2 < firstDynamicGen {
		t.Fatalf("dynamic generation ids wrong: %d, %d", g1, g2)
	}
	if got := c.Generations(); got != 4 {
		t.Fatalf("generations after two NewGeneration = %d, want 4", got)
	}
}

func TestPretenuredAllocationBypassesYoung(t *testing.T) {
	c := newCollector(t)
	gen := c.NewGeneration()
	obj, err := c.Allocate(512, 1, gen)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Gen != gen {
		t.Fatalf("pretenured object in gen %d, want %d", obj.Gen, gen)
	}
	if err := c.Heap().AddRoot(obj.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if obj.Age != 0 {
		t.Fatal("pretenured object was aged by a young collection")
	}
	if obj.Gen != gen {
		t.Fatal("pretenured object moved by a young collection")
	}
}

func TestAllocateIntoUnknownGenerationFails(t *testing.T) {
	c := newCollector(t)
	if _, err := c.Allocate(512, 1, heap.GenID(7)); err == nil {
		t.Fatal("allocation into never-created generation should fail")
	}
}

// TestPretenuredRegionsDieCheap is the core NG2C mechanism (§2.2): a batch
// of same-lifetime objects pretenured together is reclaimed with no copying,
// whereas the same batch allocated young under the same collector gets
// copied to survivor space and promoted.
func TestPretenuredRegionsDieCheap(t *testing.T) {
	run := func(pretenure bool) (copied uint64) {
		c := newCollector(t)
		h := c.Heap()
		target := heap.Young
		if pretenure {
			target = c.NewGeneration()
		}
		var batch []*heap.Object
		for i := 0; i < 100; i++ {
			obj, err := c.Allocate(512, 1, target)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.AddRoot(obj.ID); err != nil {
				t.Fatal(err)
			}
			batch = append(batch, obj)
		}
		// Two collections while the batch lives (copying pressure).
		for i := 0; i < 2; i++ {
			if err := c.ForceCollect(); err != nil {
				t.Fatal(err)
			}
		}
		// Batch dies together; one more collection reclaims.
		for _, obj := range batch {
			if err := h.RemoveRoot(obj.ID); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.ForceCollect(); err != nil {
			t.Fatal(err)
		}
		for _, p := range c.Pauses() {
			copied += p.BytesCopied
		}
		return copied
	}
	young := run(false)
	pretenured := run(true)
	if pretenured >= young {
		t.Fatalf("pretenuring did not reduce copying: pretenured=%d young=%d", pretenured, young)
	}
	if pretenured != 0 {
		t.Fatalf("same-lifetime pretenured batch should copy nothing, copied %d", pretenured)
	}
}

func TestEmptyMatureRegionsFreedAtCleanup(t *testing.T) {
	c := newCollector(t)
	h := c.Heap()
	gen := c.NewGeneration()
	var batch []*heap.Object
	for i := 0; i < 100; i++ {
		obj, err := c.Allocate(512, 1, gen)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, obj)
	}
	before := c.MatureRegions()
	if before == 0 {
		t.Fatal("pretenured allocations committed no mature regions")
	}
	for _, obj := range batch {
		if err := h.RemoveRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if got := c.MatureRegions(); got != 0 {
		t.Fatalf("dead mature regions not reclaimed: %d remain (was %d)", got, before)
	}
	if h.Stats().Objects != 0 {
		t.Fatalf("dead pretenured objects not removed: %d remain", h.Stats().Objects)
	}
}

func TestMixedCollectionCompactsWithinGeneration(t *testing.T) {
	cfg := testConfig()
	cfg.IHOP = 0.05
	c, err := New(simclock.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Heap()
	gen := c.NewGeneration()
	var objs []*heap.Object
	for i := 0; i < 120; i++ {
		obj, err := c.Allocate(512, 1, gen)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	// Kill most of each region's objects so regions are garbage-rich but
	// not empty.
	for i, obj := range objs {
		if i%8 != 0 {
			if err := h.RemoveRoot(obj.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	sawMixed := false
	for i := 0; i < 10 && !sawMixed; i++ {
		if err := c.ForceCollect(); err != nil {
			t.Fatal(err)
		}
		for _, p := range c.Pauses() {
			if p.Kind == gc.PauseMixed {
				sawMixed = true
			}
		}
	}
	if !sawMixed {
		t.Fatal("mixed collection never ran")
	}
	// Survivors of mixed compaction stay in their generation.
	for _, obj := range objs {
		if h.Object(obj.ID) != nil && obj.Gen != gen {
			t.Fatalf("mixed compaction changed generation: %v", obj)
		}
	}
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("remset invariant broken: %v", bad)
	}
}

func TestFullCollectPreservesGenerations(t *testing.T) {
	cfg := testConfig()
	cfg.Heap.MaxBytes = 12 * 16 * 1024
	cfg.YoungBytes = 4 * 16 * 1024
	c, err := New(simclock.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Heap()
	gen := c.NewGeneration()
	pre, err := c.Allocate(512, 1, gen)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(pre.ID); err != nil {
		t.Fatal(err)
	}
	// Pressure the heap into a full collection.
	for i := 0; i < 1000; i++ {
		if _, err := c.Allocate(512, 1, heap.Young); err != nil {
			t.Fatal(err)
		}
	}
	sawFull := false
	for _, p := range c.Pauses() {
		if p.Kind == gc.PauseFull {
			sawFull = true
		}
	}
	if !sawFull {
		t.Skip("heap pressure did not force a full collection at this geometry")
	}
	if pre.Gen != gen {
		t.Fatalf("full GC moved pretenured object to gen %d, want %d", pre.Gen, gen)
	}
}

func TestYoungPathMatchesG1Semantics(t *testing.T) {
	c := newCollector(t)
	h := c.Heap()
	obj, err := c.Allocate(256, 1, heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(obj.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if obj.Age != 1 || obj.Gen != heap.Young {
		t.Fatalf("young object after 1 GC: %v", obj)
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if obj.Gen != Old {
		t.Fatalf("young object not promoted at threshold: %v", obj)
	}
}

func TestHumongousAllocationYoungAndPretenured(t *testing.T) {
	c := newCollector(t)
	h := c.Heap()
	// Young-path humongous goes to Old.
	a, err := c.Allocate(10*1024, 1, heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	if a.Gen != Old {
		t.Fatalf("young-path humongous in gen %d, want old", a.Gen)
	}
	// Pretenured humongous goes to its target generation.
	gen := c.NewGeneration()
	b, err := c.Allocate(10*1024, 1, gen)
	if err != nil {
		t.Fatal(err)
	}
	if b.Gen != gen {
		t.Fatalf("pretenured humongous in gen %d, want %d", b.Gen, gen)
	}
	if err := h.AddRoot(b.ID); err != nil {
		t.Fatal(err)
	}
	offset := b.Offset
	for i := 0; i < 3; i++ {
		if err := c.ForceCollect(); err != nil {
			t.Fatal(err)
		}
	}
	if b.Offset != offset || b.Gen != gen {
		t.Fatalf("humongous object was moved: %v", b)
	}
	// a was unrooted: its region must be reclaimed whole.
	if h.Object(a.ID) != nil {
		t.Fatal("dead humongous object not reclaimed")
	}
}
