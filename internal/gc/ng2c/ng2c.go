// Package ng2c implements the pretenuring, multi-generational collector the
// paper builds on (Bruno et al., "NG2C: Pretenuring Garbage Collection with
// Dynamic Generations", ISMM '17 — §2.2 of the POLM2 paper).
//
// NG2C extends the two-generation heap with an arbitrary number of
// dynamically created generations and an API for allocating ("pretenuring")
// objects directly into any of them:
//
//   - NewGeneration creates a generation at runtime;
//   - Allocate with a non-zero target places the object straight into that
//     generation, bypassing eden, survivor copying and promotion entirely.
//
// Objects with similar lifetimes pretenured into the same generation die
// together; their regions become fully dead and are reclaimed during the
// cleanup phase without any copying. That is the entire mechanism behind
// the paper's pause-time reductions, and it emerges here from the cost
// model rather than being scripted.
package ng2c

import (
	"fmt"
	"time"

	"polm2/internal/gc"
	"polm2/internal/heap"
	"polm2/internal/simclock"
)

// Old is the promotion target for objects that tenure out of the young
// generation without having been pretenured.
const Old heap.GenID = 1

// firstDynamicGen is the id of the first generation NewGeneration hands out.
const firstDynamicGen heap.GenID = 2

// Config parameterizes the collector. The young-generation machinery is
// identical to the G1 baseline by construction, so that the only difference
// measured by the evaluation is pretenuring itself.
type Config struct {
	// Heap sizes the underlying simulated heap.
	Heap heap.Config
	// Cost converts collection work into pause time. Zero value means
	// gc.DefaultCostModel.
	Cost gc.CostModel
	// YoungBytes caps the young generation (eden + survivor).
	YoungBytes uint64
	// SurvivorFraction is the share of YoungBytes reserved for survivor
	// space. Default 0.15.
	SurvivorFraction float64
	// TenuringThreshold is the promotion age for non-pretenured objects.
	// Default 4.
	TenuringThreshold uint8
	// IHOP is the occupancy fraction that arms mixed collections.
	// Default 0.45.
	IHOP float64
	// MaxMixedRegions caps old/dynamic regions evacuated per mixed
	// collection. Default 8.
	MaxMixedRegions int
	// MinMixedGarbage is the minimum garbage fraction a region must
	// have to be evacuated by a mixed collection (G1's liveness
	// threshold: mostly-live regions are not worth copying).
	// Default 0.25.
	MinMixedGarbage float64
	// PressureFraction triggers a collection when committing a mature
	// region pushes heap occupancy past this fraction. Pretenured
	// allocation bypasses eden and would otherwise never trigger the
	// cleanup that reclaims dead pretenured regions. Default 0.45.
	PressureFraction float64
}

func (c Config) withDefaults() Config {
	if c.Cost == (gc.CostModel{}) {
		c.Cost = gc.DefaultCostModel()
	}
	if c.SurvivorFraction == 0 {
		c.SurvivorFraction = 0.15
	}
	if c.TenuringThreshold == 0 {
		c.TenuringThreshold = 4
	}
	if c.IHOP == 0 {
		c.IHOP = 0.45
	}
	if c.MaxMixedRegions == 0 {
		c.MaxMixedRegions = 8
	}
	if c.MinMixedGarbage == 0 {
		c.MinMixedGarbage = 0.25
	}
	if c.PressureFraction == 0 {
		c.PressureFraction = 0.45
	}
	return c
}

// Collector is the NG2C-like pretenuring collector.
type Collector struct {
	h     *heap.Heap
	clock *simclock.Clock
	cfg   Config

	edenCur   *heap.Region
	eden      []*heap.Region
	survivors []*heap.Region
	// mature holds the regions of every generation >= Old, including the
	// dynamic pretenuring generations.
	mature []*heap.Region
	// allocCur is the current allocation region per pretenuring
	// generation (Old is only filled by promotion, never direct
	// allocation without a plan).
	allocCur map[heap.GenID]*heap.Region

	nextGen heap.GenID
	// humongous marks dedicated single-object regions; they are never
	// evacuated, only reclaimed whole when their object dies.
	humongous map[heap.RegionID]bool

	pauses       []gc.Pause
	cycles       uint64
	listeners    []gc.CycleFunc
	mixedPending bool
	// pressureArmed allows one pressure-triggered collection per
	// threshold crossing.
	pressureArmed bool

	// Per-collection scratch, reused across cycles so steady-state
	// collections stay allocation-free on the host.
	csScratch    []*heap.Region
	emptyScratch []*heap.Region
	candScratch  []*heap.Region
	inOldCS      map[heap.RegionID]heap.GenID
}

var (
	_ gc.Collector   = (*Collector)(nil)
	_ gc.Pretenuring = (*Collector)(nil)
)

// New builds an NG2C-like collector over a fresh heap.
func New(clock *simclock.Clock, cfg Config) (*Collector, error) {
	cfg = cfg.withDefaults()
	h, err := heap.New(cfg.Heap)
	if err != nil {
		return nil, fmt.Errorf("ng2c: %w", err)
	}
	if cfg.YoungBytes == 0 {
		return nil, fmt.Errorf("ng2c: YoungBytes must be set")
	}
	if cfg.YoungBytes < uint64(h.Config().RegionSize)*2 {
		return nil, fmt.Errorf("ng2c: YoungBytes %d must hold at least two regions", cfg.YoungBytes)
	}
	return &Collector{
		h:         h,
		clock:     clock,
		cfg:       cfg,
		allocCur:  make(map[heap.GenID]*heap.Region),
		nextGen:   firstDynamicGen,
		humongous: make(map[heap.RegionID]bool),
	}, nil
}

// Name implements gc.Collector.
func (c *Collector) Name() string { return "NG2C" }

// Heap implements gc.Collector.
func (c *Collector) Heap() *heap.Heap { return c.h }

// Clock implements gc.Collector.
func (c *Collector) Clock() *simclock.Clock { return c.clock }

// Pauses implements gc.Collector.
func (c *Collector) Pauses() []gc.Pause {
	out := make([]gc.Pause, len(c.pauses))
	copy(out, c.pauses)
	return out
}

// Cycles implements gc.Collector.
func (c *Collector) Cycles() uint64 { return c.cycles }

// MutatorFactor implements gc.Collector. NG2C's barriers match G1's
// (§5.5 of the NG2C paper reports no throughput cost).
func (c *Collector) MutatorFactor() float64 { return 1.0 }

// OnCycleEnd implements gc.Collector.
func (c *Collector) OnCycleEnd(fn gc.CycleFunc) {
	c.listeners = append(c.listeners, fn)
}

// NewGeneration implements gc.Pretenuring: it creates a fresh dynamic
// generation and returns its id (System.newGeneration in the paper's API).
func (c *Collector) NewGeneration() heap.GenID {
	id := c.nextGen
	c.nextGen++
	return id
}

// Generations implements gc.Pretenuring: young + old + dynamic generations
// created so far.
func (c *Collector) Generations() int {
	return 2 + int(c.nextGen-firstDynamicGen)
}

func (c *Collector) youngBytes() uint64 {
	return uint64(len(c.eden)+len(c.survivors)) * uint64(c.h.Config().RegionSize)
}

// Allocate implements gc.Collector. A zero target allocates young exactly
// like the G1 baseline; a non-zero target pretenures the object directly
// into that generation (the @Gen + setGeneration path of §3.4).
func (c *Collector) Allocate(size uint32, site heap.SiteID, target heap.GenID) (*heap.Object, error) {
	regionSize := c.h.Config().RegionSize
	if uint64(size) > uint64(regionSize) {
		return nil, fmt.Errorf("ng2c: allocation of %d bytes exceeds the region size (%d)", size, regionSize)
	}
	if target != heap.Young && (target >= c.nextGen || target < Old) {
		return nil, fmt.Errorf("ng2c: allocation into nonexistent generation %d", target)
	}
	if size > regionSize/2 {
		// Humongous allocation: a dedicated mature region (in the
		// target generation, or Old for young-path humongous objects,
		// as in G1). Never copied; reclaimed whole at cleanup.
		gen := target
		if gen == heap.Young {
			gen = Old
		}
		r, err := c.newMatureRegion(gen)
		if err != nil {
			return nil, err
		}
		c.humongous[r.ID()] = true
		obj, err := c.h.Allocate(r, size, site)
		if err != nil {
			return nil, fmt.Errorf("ng2c: %w", err)
		}
		return obj, nil
	}
	if target == heap.Young {
		return c.allocateYoung(size, site)
	}
	cur := c.allocCur[target]
	if cur == nil || cur.Used()+size > regionSize {
		r, err := c.newMatureRegion(target)
		if err != nil {
			return nil, err
		}
		c.allocCur[target] = r
		cur = r
	}
	obj, err := c.h.Allocate(cur, size, site)
	if err != nil {
		return nil, fmt.Errorf("ng2c: %w", err)
	}
	return obj, nil
}

// newMatureRegion commits a region for a generation >= Old, falling back to
// a full collection on exhaustion. Crossing the pressure threshold triggers
// one collection so that dead pretenured regions are reclaimed even when
// eden sees little traffic.
func (c *Collector) newMatureRegion(gen heap.GenID) (*heap.Region, error) {
	max := c.h.Config().MaxBytes
	if max != 0 && c.pressureArmed &&
		float64(c.h.Stats().CommittedBytes) > c.cfg.PressureFraction*float64(max) {
		c.pressureArmed = false
		if err := c.collect(); err != nil {
			return nil, err
		}
	}
	r, err := c.h.NewRegion(gen)
	if err != nil {
		if err := c.fullCollect(); err != nil {
			return nil, err
		}
		r, err = c.h.NewRegion(gen)
		if err != nil {
			return nil, fmt.Errorf("ng2c: heap exhausted after full GC: %w", err)
		}
	}
	c.mature = append(c.mature, r)
	return r, nil
}

func (c *Collector) allocateYoung(size uint32, site heap.SiteID) (*heap.Object, error) {
	regionSize := c.h.Config().RegionSize
	if c.edenCur == nil || c.edenCur.Used()+size > regionSize {
		if c.youngBytes()+uint64(regionSize) > c.cfg.YoungBytes {
			if err := c.collect(); err != nil {
				return nil, err
			}
		}
		r, err := c.h.NewRegion(heap.Young)
		if err != nil {
			if err := c.fullCollect(); err != nil {
				return nil, err
			}
			r, err = c.h.NewRegion(heap.Young)
			if err != nil {
				return nil, fmt.Errorf("ng2c: heap exhausted after full GC: %w", err)
			}
		}
		c.eden = append(c.eden, r)
		c.edenCur = r
	}
	obj, err := c.h.Allocate(c.edenCur, size, site)
	if err != nil {
		return nil, fmt.Errorf("ng2c: %w", err)
	}
	return obj, nil
}

// ForceCollect implements gc.Collector.
func (c *Collector) ForceCollect() error { return c.collect() }

// collect runs a young collection, extended into a mixed collection when
// armed. Fully dead mature regions are reclaimed in the cleanup phase at
// per-region cost and no copying — the payoff of pretenuring.
func (c *Collector) collect() error {
	c.armMixedIfNeeded() // occupancy check at collection start, like G1's IHOP
	start := c.clock.Now()
	live := c.h.Trace()

	cs := c.csScratch[:0]
	cs = append(cs, c.eden...)
	cs = append(cs, c.survivors...)
	kind := gc.PauseYoung

	// Cleanup phase: fully dead mature regions are freed without
	// evacuation.
	emptyCS := c.emptyScratch[:0]
	keptMature := c.mature[:0]
	for _, r := range c.mature {
		if live.Region(r.ID()).Objects == 0 {
			emptyCS = append(emptyCS, r)
		} else {
			keptMature = append(keptMature, r)
		}
	}
	c.mature = keptMature

	// Mixed extension: evacuate the most garbage-rich surviving mature
	// regions.
	var oldCS []*heap.Region
	if c.mixedPending && len(c.mature) > 0 {
		kind = gc.PauseMixed
		source := c.mature
		candidates := c.candScratch[:0]
		regionSize := float64(c.h.Config().RegionSize)
		for _, r := range source {
			if c.humongous[r.ID()] {
				continue // humongous objects are never copied
			}
			garbage := float64(r.Used()) - float64(live.Region(r.ID()).Bytes)
			if garbage >= c.cfg.MinMixedGarbage*regionSize {
				candidates = append(candidates, r)
			}
		}
		gc.SortRegionsByGarbage(candidates, live)
		n := c.cfg.MaxMixedRegions
		if n > len(candidates) {
			n = len(candidates)
		}
		oldCS = candidates[:n]
		cs = append(cs, oldCS...)
	}

	remset := 0
	for _, r := range cs {
		remset += r.RemsetEntries()
	}

	survivorCap := uint64(float64(c.cfg.YoungBytes) * c.cfg.SurvivorFraction)
	survivorCursor := gc.NewCursor(c.h, heap.Young)
	promoCursor := gc.NewCursor(c.h, Old)
	// Mixed-evacuated mature regions compact within their own
	// generation, preserving lifetime segregation.
	genCursors := make(map[heap.GenID]*gc.Cursor)

	if c.inOldCS == nil {
		c.inOldCS = make(map[heap.RegionID]heap.GenID, len(oldCS))
	} else {
		clear(c.inOldCS)
	}
	inOldCS := c.inOldCS
	for _, r := range oldCS {
		inOldCS[r.ID()] = r.Gen()
	}

	var promotedBytes uint64
	place := func(obj *heap.Object) error {
		if gen, ok := inOldCS[obj.Region]; ok {
			cur := genCursors[gen]
			if cur == nil {
				cur = gc.NewCursor(c.h, gen)
				genCursors[gen] = cur
			}
			return cur.Place(obj)
		}
		obj.Age++
		if obj.Age >= c.cfg.TenuringThreshold ||
			survivorCursor.Bytes()+uint64(obj.Size) > survivorCap {
			promotedBytes += uint64(obj.Size)
			return promoCursor.Place(obj)
		}
		return survivorCursor.Place(obj)
	}

	freed := 0
	for _, r := range cs {
		if _, _, err := gc.EvacuateAndFree(c.h, r, live, place); err != nil {
			return fmt.Errorf("ng2c: %s collection: %w", kind, err)
		}
		freed++
	}
	for _, r := range emptyCS {
		gc.SweepRegion(c.h, r, live)
		c.h.FreeRegion(r)
		delete(c.humongous, r.ID())
		freed++
	}
	// Dropped allocation cursors for freed/evacuated regions.
	for gen, cur := range c.allocCur {
		if cur.Freed() {
			delete(c.allocCur, gen)
		}
	}

	c.eden = nil
	c.edenCur = nil
	c.survivors = survivorCursor.Regions()
	if len(oldCS) > 0 {
		kept := c.mature[:0]
		for _, r := range c.mature {
			if _, ok := inOldCS[r.ID()]; !ok {
				kept = append(kept, r)
			}
		}
		c.mature = kept
		c.mixedPending = false
	}
	c.mature = append(c.mature, promoCursor.Regions()...)
	copiedBytes := survivorCursor.Bytes() + promoCursor.Bytes()
	copiedObjects := survivorCursor.Objects() + promoCursor.Objects()
	for _, cur := range genCursors {
		c.mature = append(c.mature, cur.Regions()...)
		copiedBytes += cur.Bytes()
		copiedObjects += cur.Objects()
	}

	// Return the grown scratch backings for the next cycle.
	c.csScratch = cs[:0]
	c.emptyScratch = emptyCS[:0]
	if cap(oldCS) > cap(c.candScratch) {
		c.candScratch = oldCS[:0]
	}

	dur := c.cfg.Cost.EvacuationCost(len(cs)+len(emptyCS), remset, copiedBytes, copiedObjects)
	c.clock.Advance(dur)
	c.cycles++
	c.pauses = append(c.pauses, gc.Pause{
		Start:            start,
		Duration:         dur,
		Kind:             kind,
		Cycle:            c.cycles,
		BytesCopied:      copiedBytes,
		ObjectsCopied:    copiedObjects,
		RegionsCollected: len(cs) + len(emptyCS),
		RegionsFreed:     freed,
		PromotedBytes:    promotedBytes,
	})
	c.armMixedIfNeeded()
	c.pressureArmed = true
	c.notify(live)
	return nil
}

// fullCollect compacts the whole heap, preserving each object's generation.
func (c *Collector) fullCollect() error {
	start := c.clock.Now()
	live := c.h.Trace()
	regions := c.h.ActiveRegions()
	remset := 0
	for _, r := range regions {
		remset += r.RemsetEntries()
	}
	cursors := make(map[heap.GenID]*gc.Cursor)
	var copiedBytes uint64
	var copiedObjects int
	place := func(obj *heap.Object) error {
		gen := obj.Gen
		if gen == heap.Young {
			gen = Old // full GC tenures everything, as in HotSpot
		}
		cur := cursors[gen]
		if cur == nil {
			cur = gc.NewCursor(c.h, gen)
			cursors[gen] = cur
		}
		return cur.Place(obj)
	}
	var keptHumongous []*heap.Region
	for _, r := range regions {
		if c.humongous[r.ID()] {
			gc.SweepRegion(c.h, r, live)
			if r.ResidentCount() == 0 {
				c.h.FreeRegion(r)
				delete(c.humongous, r.ID())
			} else {
				keptHumongous = append(keptHumongous, r)
			}
			continue
		}
		if _, _, err := gc.EvacuateAndFree(c.h, r, live, place); err != nil {
			return fmt.Errorf("ng2c: full collection: %w", err)
		}
	}
	c.eden = nil
	c.edenCur = nil
	c.survivors = nil
	c.mature = keptHumongous
	c.allocCur = make(map[heap.GenID]*heap.Region)
	for _, cur := range cursors {
		c.mature = append(c.mature, cur.Regions()...)
		copiedBytes += cur.Bytes()
		copiedObjects += cur.Objects()
	}
	c.mixedPending = false

	dur := c.cfg.Cost.EvacuationCost(len(regions), remset, copiedBytes, copiedObjects) +
		time.Duration(live.Objects)*c.cfg.Cost.PerTracedObject
	c.clock.Advance(dur)
	c.cycles++
	c.pauses = append(c.pauses, gc.Pause{
		Start:            start,
		Duration:         dur,
		Kind:             gc.PauseFull,
		Cycle:            c.cycles,
		BytesCopied:      copiedBytes,
		ObjectsCopied:    copiedObjects,
		RegionsCollected: len(regions),
		RegionsFreed:     len(regions),
	})
	c.armMixedIfNeeded()
	c.notify(live)
	return nil
}

func (c *Collector) armMixedIfNeeded() {
	max := c.h.Config().MaxBytes
	if max == 0 {
		return
	}
	if float64(c.h.Stats().CommittedBytes) > c.cfg.IHOP*float64(max) {
		c.mixedPending = true
	}
}

func (c *Collector) notify(live *heap.LiveSet) {
	for _, fn := range c.listeners {
		fn(c.cycles, live)
	}
}

// MatureRegions returns the number of regions in generations >= Old (test
// hook).
func (c *Collector) MatureRegions() int { return len(c.mature) }
