package gc

import (
	"testing"
	"time"

	"polm2/internal/heap"
	"polm2/internal/trace"
)

// benchCostModel prices the synthetic pauses the tracing guards use.
func benchCostModel() CostModel {
	return CostModel{
		Base:            500 * time.Microsecond,
		PerRegion:       50 * time.Microsecond,
		PerRemsetEntry:  100 * time.Nanosecond,
		PerCopiedByte:   2 * time.Nanosecond,
		PerCopiedObject: 300 * time.Nanosecond,
	}
}

// benchPause is a representative young-collection pause record.
func benchPause(cycle uint64) Pause {
	return Pause{
		Start:            time.Duration(cycle) * 12 * time.Second,
		Duration:         18 * time.Millisecond,
		Kind:             PauseYoung,
		Cycle:            cycle,
		BytesCopied:      2 << 20,
		ObjectsCopied:    700,
		RegionsCollected: 128,
		RegionsFreed:     120,
	}
}

// benchHeap builds a heap with a long-lived rooted population in an old
// region, simulating the retained working set a steady-state cycle scans
// past.
func benchHeap(b *testing.B) (*heap.Heap, []*heap.Object) {
	b.Helper()
	h, err := heap.New(heap.Config{RegionSize: 1 << 20, PageSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	old, err := h.NewRegion(heap.GenID(1))
	if err != nil {
		b.Fatal(err)
	}
	retained := make([]*heap.Object, 0, 512)
	for i := 0; i < 512; i++ {
		obj, err := h.Allocate(old, 512, 1)
		if err != nil {
			b.Fatal(err)
		}
		h.PinRoot(obj)
		retained = append(retained, obj)
	}
	return h, retained
}

// fillEden allocates count transient objects into fresh young regions,
// linking every fourth one to a retained holder so a deterministic quarter
// of them survive the next trace.
func fillEden(b *testing.B, h *heap.Heap, retained []*heap.Object, count int) []*heap.Region {
	b.Helper()
	var eden []*heap.Region
	var cur *heap.Region
	for i := 0; i < count; i++ {
		if cur == nil || cur.Used()+256 > h.Config().RegionSize {
			r, err := h.NewRegion(heap.Young)
			if err != nil {
				b.Fatal(err)
			}
			eden = append(eden, r)
			cur = r
		}
		obj, err := h.Allocate(cur, 256, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i%4 == 0 {
			holder := retained[i%len(retained)]
			if err := h.Link(holder.ID, obj.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
	return eden
}

// BenchmarkSweepRegion measures sweeping mostly-dead regions (the young
// collection fast path): per iteration fresh regions are filled with 1k
// objects of which a quarter survive, traced, swept, and freed; the
// unlink/reclaim of survivors is excluded from the timing.
func BenchmarkSweepRegion(b *testing.B) {
	h, retained := benchHeap(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eden := fillEden(b, h, retained, 1024)
		live := h.Trace()
		b.StartTimer()
		for _, r := range eden {
			SweepRegion(h, r, live)
		}
		b.StopTimer()
		unlinkSurvivors(b, h, retained)
		reclaimYoungGarbage(b, h, eden)
		b.StartTimer()
	}
}

// unlinkSurvivors clears every retained holder's outgoing edges.
func unlinkSurvivors(b *testing.B, h *heap.Heap, retained []*heap.Object) {
	b.Helper()
	type edge struct {
		child *heap.Object
		n     int
	}
	var edges []edge
	for _, holder := range retained {
		edges = edges[:0]
		holder.EachRef(func(child *heap.Object, n int) {
			edges = append(edges, edge{child, n})
		})
		for _, e := range edges {
			for k := 0; k < e.n; k++ {
				if err := h.Unlink(holder.ID, e.child.ID); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// reclaimYoungGarbage sweeps and frees the given regions.
func reclaimYoungGarbage(b *testing.B, h *heap.Heap, regions []*heap.Region) {
	b.Helper()
	live := h.Trace()
	for _, r := range regions {
		SweepRegion(h, r, live)
		if r.ResidentCount() == 0 {
			h.FreeRegion(r)
		}
	}
}

// BenchmarkSteadyStateGCCycle is the headline benchmark: one complete
// steady-state young collection — mutator allocation churn, full-heap
// trace, evacuation of survivors, sweep of garbage, region reclamation —
// against a fixed retained working set. allocs/op here is what the host Go
// runtime pays per simulated GC cycle. The cycle also passes through the
// disabled trace hook every iteration: with tracing off the hook must be
// invisible in both ns/op and allocs/op (the zero-alloc contract is pinned
// hard by TestDisabledTracerZeroAllocs).
func BenchmarkSteadyStateGCCycle(b *testing.B) {
	h, retained := benchHeap(b)
	var tracer *trace.Tracer // nil: tracing disabled
	model := benchCostModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eden := fillEden(b, h, retained, 2048)
		live := h.Trace()
		cursor := NewCursor(h, heap.GenID(1))
		for _, r := range eden {
			if _, _, err := EvacuateAndFree(h, r, live, cursor.Place); err != nil {
				b.Fatal(err)
			}
		}
		unlinkSurvivors(b, h, retained)
		reclaimYoungGarbage(b, h, cursor.Regions())
		TraceCycle(tracer, model, benchPause(uint64(i)))
	}
}

// BenchmarkTraceCycleDisabled isolates the disabled hook: the whole
// per-cycle tracing surface (cycle span plus four phase spans) reduced to
// its guard. Expect ~1ns and 0 allocs/op.
func BenchmarkTraceCycleDisabled(b *testing.B) {
	var tracer *trace.Tracer
	model := benchCostModel()
	p := benchPause(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TraceCycle(tracer, model, p)
	}
}

// TestDisabledTracerZeroAllocs pins the cost contract the hot paths rely
// on: a nil tracer's per-cycle hook allocates nothing. (The benchmark
// above shows it; this fails the build the moment it regresses.)
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tracer *trace.Tracer
	model := benchCostModel()
	p := benchPause(1)
	if got := testing.AllocsPerRun(1000, func() {
		TraceCycle(tracer, model, p)
		TracePauses(tracer, model, nil)
	}); got != 0 {
		t.Fatalf("disabled tracer allocates %v per GC cycle, want 0", got)
	}
}

// BenchmarkEvacuateRegion measures region-to-region evacuation of a live
// population: the copying work of mixed and full collections.
func BenchmarkEvacuateRegion(b *testing.B) {
	h, err := heap.New(heap.Config{RegionSize: 1 << 20, PageSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	src, err := h.NewRegion(heap.Young)
	if err != nil {
		b.Fatal(err)
	}
	objs := make([]*heap.Object, 0, 1024)
	for i := 0; i < 1024; i++ {
		obj, err := h.Allocate(src, 512, 1)
		if err != nil {
			b.Fatal(err)
		}
		h.PinRoot(obj)
		objs = append(objs, obj)
	}
	for i := 0; i+1 < len(objs); i += 2 {
		if err := h.Link(objs[i].ID, objs[i+1].ID); err != nil {
			b.Fatal(err)
		}
	}
	live := h.Trace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err := h.NewRegion(heap.Young)
		if err != nil {
			b.Fatal(err)
		}
		for _, obj := range LiveResidents(h, src, live) {
			if err := h.Evacuate(obj, dst); err != nil {
				b.Fatal(err)
			}
		}
		h.FreeRegion(src)
		src = dst
	}
}
