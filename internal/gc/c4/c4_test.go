package c4

import (
	"testing"
	"time"

	"polm2/internal/heap"
	"polm2/internal/simclock"
)

func testConfig() Config {
	return Config{
		Heap: heap.Config{
			RegionSize: 16 * 1024,
			PageSize:   4096,
			MaxBytes:   32 * 16 * 1024,
		},
	}
}

func TestRequiresMaxBytes(t *testing.T) {
	cfg := testConfig()
	cfg.Heap.MaxBytes = 0
	if _, err := New(simclock.New(), cfg); err == nil {
		t.Fatal("C4 without MaxBytes should fail")
	}
}

func TestAllPausesUnder10ms(t *testing.T) {
	c, err := New(simclock.New(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := c.Heap()
	var keep []*heap.Object
	for i := 0; i < 3000; i++ {
		obj, err := c.Allocate(512, 1, heap.Young)
		if err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := h.AddRoot(obj.ID); err != nil {
				t.Fatal(err)
			}
			keep = append(keep, obj)
			if len(keep) > 100 {
				old := keep[0]
				keep = keep[1:]
				if err := h.RemoveRoot(old.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	pauses := c.Pauses()
	if len(pauses) == 0 {
		t.Fatal("no concurrent cycles ran")
	}
	for _, p := range pauses {
		if p.Duration >= 10*time.Millisecond {
			t.Fatalf("C4 pause %v >= 10ms", p.Duration)
		}
	}
}

func TestMutatorFactorAboveOne(t *testing.T) {
	c, err := New(simclock.New(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f := c.MutatorFactor(); f <= 1.0 {
		t.Fatalf("C4 mutator factor = %v, want > 1 (barrier tax)", f)
	}
}

func TestPreReservedBytes(t *testing.T) {
	cfg := testConfig()
	c, err := New(simclock.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PreReservedBytes(); got != cfg.Heap.MaxBytes {
		t.Fatalf("PreReservedBytes = %d, want %d", got, cfg.Heap.MaxBytes)
	}
}

func TestCycleReclaimsGarbage(t *testing.T) {
	c, err := New(simclock.New(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := c.Allocate(512, 1, heap.Young); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if got := c.Heap().Stats().Objects; got != 0 {
		t.Fatalf("garbage survived a cycle: %d objects", got)
	}
}

func TestCompactionPreservesLiveObjects(t *testing.T) {
	c, err := New(simclock.New(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := c.Heap()
	var keep []*heap.Object
	for i := 0; i < 500; i++ {
		obj, err := c.Allocate(512, 1, heap.Young)
		if err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := h.AddRoot(obj.ID); err != nil {
				t.Fatal(err)
			}
			keep = append(keep, obj)
		}
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	for _, obj := range keep {
		if h.Object(obj.ID) == nil {
			t.Fatal("cycle lost a live object")
		}
	}
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("remset invariant broken: %v", bad)
	}
}
