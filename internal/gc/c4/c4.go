// Package c4 models the Continuously Concurrent Compacting Collector (Tene
// et al., ISMM '11), which the paper uses as a throughput and memory
// comparison point (§5.5): C4's pauses all fall under 10 ms, so the paper
// omits it from the pause-time figures, but its read/write barriers cost
// throughput (it is the slowest collector in Figure 7) and it pre-reserves
// all available memory at launch (≈2× footprint in Figure 9's discussion).
package c4

import (
	"fmt"
	"time"

	"polm2/internal/gc"
	"polm2/internal/heap"
	"polm2/internal/simclock"
)

// Config parameterizes the collector model.
type Config struct {
	// Heap sizes the underlying simulated heap. MaxBytes must be set:
	// C4 pre-reserves it all.
	Heap heap.Config
	// Cost is kept for interface symmetry; C4 charges only small
	// checkpoint pauses.
	Cost gc.CostModel
	// TriggerFraction is the committed-heap fraction that starts a
	// concurrent cycle. Default 0.5.
	TriggerFraction float64
	// BarrierFactor is the mutator slowdown from C4's loaded value
	// barrier and write barriers. Default 1.5, calibrated so C4 lands
	// where the paper's Figure 7 puts it: the worst throughput of the
	// evaluated collectors.
	BarrierFactor float64
	// CheckpointPause is the per-cycle stop-the-world checkpoint pause.
	// Default 3 ms (the paper reports all C4 pauses under 10 ms).
	CheckpointPause time.Duration
	// EvacuateBelow is the live fraction under which a region is
	// compacted during a cycle. Default 0.5.
	EvacuateBelow float64
}

func (c Config) withDefaults() Config {
	if c.Cost == (gc.CostModel{}) {
		c.Cost = gc.DefaultCostModel()
	}
	if c.TriggerFraction == 0 {
		c.TriggerFraction = 0.5
	}
	if c.BarrierFactor == 0 {
		c.BarrierFactor = 1.5
	}
	if c.CheckpointPause == 0 {
		c.CheckpointPause = 3 * time.Millisecond
	}
	if c.EvacuateBelow == 0 {
		c.EvacuateBelow = 0.5
	}
	return c
}

// Collector is the C4-like concurrent collector model.
type Collector struct {
	h     *heap.Heap
	clock *simclock.Clock
	cfg   Config

	cur     *heap.Region
	regions []*heap.Region

	pauses    []gc.Pause
	cycles    uint64
	listeners []gc.CycleFunc
}

var _ gc.Collector = (*Collector)(nil)

// New builds a C4-like collector over a fresh heap.
func New(clock *simclock.Clock, cfg Config) (*Collector, error) {
	cfg = cfg.withDefaults()
	if cfg.Heap.MaxBytes == 0 {
		return nil, fmt.Errorf("c4: Heap.MaxBytes must be set (C4 pre-reserves all memory)")
	}
	h, err := heap.New(cfg.Heap)
	if err != nil {
		return nil, fmt.Errorf("c4: %w", err)
	}
	return &Collector{h: h, clock: clock, cfg: cfg}, nil
}

// Name implements gc.Collector.
func (c *Collector) Name() string { return "C4" }

// Heap implements gc.Collector.
func (c *Collector) Heap() *heap.Heap { return c.h }

// Clock implements gc.Collector.
func (c *Collector) Clock() *simclock.Clock { return c.clock }

// Pauses implements gc.Collector.
func (c *Collector) Pauses() []gc.Pause {
	out := make([]gc.Pause, len(c.pauses))
	copy(out, c.pauses)
	return out
}

// Cycles implements gc.Collector.
func (c *Collector) Cycles() uint64 { return c.cycles }

// MutatorFactor implements gc.Collector: the barrier tax.
func (c *Collector) MutatorFactor() float64 { return c.cfg.BarrierFactor }

// OnCycleEnd implements gc.Collector.
func (c *Collector) OnCycleEnd(fn gc.CycleFunc) {
	c.listeners = append(c.listeners, fn)
}

// PreReservedBytes returns the memory C4 reserves at launch: the entire
// configured heap. The evaluation harness reports this instead of the
// committed high-water mark (Figure 9's discussion).
func (c *Collector) PreReservedBytes() uint64 { return c.cfg.Heap.MaxBytes }

// Allocate implements gc.Collector.
func (c *Collector) Allocate(size uint32, site heap.SiteID, _ heap.GenID) (*heap.Object, error) {
	regionSize := c.h.Config().RegionSize
	if uint64(size) > uint64(regionSize) {
		return nil, fmt.Errorf("c4: humongous allocation of %d bytes unsupported (region size %d)", size, regionSize)
	}
	if c.cur == nil || c.cur.Used()+size > regionSize {
		if float64(c.h.Stats().CommittedBytes+uint64(regionSize)) > c.cfg.TriggerFraction*float64(c.cfg.Heap.MaxBytes) {
			if err := c.cycle(); err != nil {
				return nil, err
			}
		}
		r, err := c.h.NewRegion(heap.Young)
		if err != nil {
			// Allocation outpaced the concurrent collector: run
			// another cycle synchronously.
			if err := c.cycle(); err != nil {
				return nil, err
			}
			r, err = c.h.NewRegion(heap.Young)
			if err != nil {
				return nil, fmt.Errorf("c4: heap exhausted: %w", err)
			}
		}
		c.regions = append(c.regions, r)
		c.cur = r
	}
	obj, err := c.h.Allocate(c.cur, size, site)
	if err != nil {
		return nil, fmt.Errorf("c4: %w", err)
	}
	return obj, nil
}

// ForceCollect implements gc.Collector.
func (c *Collector) ForceCollect() error { return c.cycle() }

// cycle runs one concurrent mark-compact cycle. Marking, sweeping and
// compaction happen concurrently with the mutator, so none of that work is
// charged to pause time — only the fixed checkpoint pause is. The
// throughput cost of concurrency is carried by MutatorFactor instead.
func (c *Collector) cycle() error {
	start := c.clock.Now()
	live := c.h.Trace()

	regionSize := c.h.Config().RegionSize
	cursor := gc.NewCursor(c.h, heap.Young)
	// In-place filter: c.regions is rebuilt into its own backing array,
	// so steady-state cycles allocate nothing for region bookkeeping.
	kept := c.regions[:0]
	freed := 0
	for _, r := range c.regions {
		rl := live.Region(r.ID())
		liveFrac := float64(rl.Bytes) / float64(regionSize)
		if rl.Objects == 0 {
			gc.SweepRegion(c.h, r, live)
			c.h.FreeRegion(r)
			freed++
			continue
		}
		if liveFrac < c.cfg.EvacuateBelow && r != c.cur {
			if _, _, err := gc.EvacuateAndFree(c.h, r, live, cursor.Place); err != nil {
				return fmt.Errorf("c4: cycle: %w", err)
			}
			freed++
			continue
		}
		// Sweep dead objects in place (concurrent free).
		gc.SweepRegion(c.h, r, live)
		kept = append(kept, r)
	}
	c.regions = append(kept, cursor.Regions()...)
	if c.cur != nil && c.cur.Freed() {
		c.cur = nil
	}

	dur := c.cfg.CheckpointPause
	c.clock.Advance(dur)
	c.cycles++
	c.pauses = append(c.pauses, gc.Pause{
		Start:            start,
		Duration:         dur,
		Kind:             gc.PauseConcurrent,
		Cycle:            c.cycles,
		BytesCopied:      cursor.Bytes(),
		ObjectsCopied:    cursor.Objects(),
		RegionsCollected: len(c.regions) + freed,
		RegionsFreed:     freed,
	})
	for _, fn := range c.listeners {
		fn(c.cycles, live)
	}
	return nil
}
