package g1

import (
	"testing"
	"time"

	"polm2/internal/gc"
	"polm2/internal/heap"
	"polm2/internal/simclock"
)

func testConfig() Config {
	return Config{
		Heap: heap.Config{
			RegionSize: 16 * 1024,
			PageSize:   4096,
			MaxBytes:   64 * 16 * 1024, // 64 regions
		},
		YoungBytes:        8 * 16 * 1024, // 8 regions
		SurvivorFraction:  0.25,
		TenuringThreshold: 2,
		IHOP:              0.45,
		MaxMixedRegions:   4,
	}
}

func newCollector(t *testing.T) *Collector {
	t.Helper()
	c, err := New(simclock.New(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	clk := simclock.New()
	if _, err := New(clk, Config{Heap: heap.Config{RegionSize: 16 * 1024, PageSize: 4096}}); err == nil {
		t.Fatal("missing YoungBytes should fail")
	}
	cfg := testConfig()
	cfg.YoungBytes = 100
	if _, err := New(clk, cfg); err == nil {
		t.Fatal("tiny YoungBytes should fail")
	}
}

func TestAllocationFillsEdenThenCollects(t *testing.T) {
	c := newCollector(t)
	// Fill the young generation with garbage: no roots, everything dies.
	for i := 0; i < 2000; i++ {
		if _, err := c.Allocate(512, 1, heap.Young); err != nil {
			t.Fatal(err)
		}
	}
	if c.Cycles() == 0 {
		t.Fatal("filling young gen never triggered a collection")
	}
	for _, p := range c.Pauses() {
		if p.Kind == gc.PauseYoung && p.BytesCopied != 0 {
			t.Fatalf("young GC over pure garbage copied %d bytes", p.BytesCopied)
		}
	}
	if got := c.Heap().Stats().Objects; got >= 2000 {
		t.Fatalf("garbage not collected: %d objects resident", got)
	}
}

func TestHumongousAllocationRejected(t *testing.T) {
	c := newCollector(t)
	if _, err := c.Allocate(32*1024, 1, heap.Young); err == nil {
		t.Fatal("humongous allocation should fail")
	}
}

func TestSurvivorAgingAndPromotion(t *testing.T) {
	c := newCollector(t)
	obj, err := c.Allocate(256, 1, heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Heap().AddRoot(obj.ID); err != nil {
		t.Fatal(err)
	}

	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if obj.Gen != heap.Young || obj.Age != 1 {
		t.Fatalf("after 1 GC: gen=%d age=%d, want young/1", obj.Gen, obj.Age)
	}
	if c.SurvivorRegions() == 0 {
		t.Fatal("survivor space empty after collection of live object")
	}

	// Second collection reaches the tenuring threshold (2): promotion.
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if obj.Gen != Old {
		t.Fatalf("after 2 GCs: gen=%d, want old", obj.Gen)
	}
	if c.OldRegions() == 0 {
		t.Fatal("no old regions after promotion")
	}
}

func TestSurvivorOverflowPromotesEnMasse(t *testing.T) {
	cfg := testConfig()
	cfg.SurvivorFraction = 0.05 // survivor cap < 1 region: overflow fast
	cfg.TenuringThreshold = 10
	c, err := New(simclock.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Keep ~6 regions of objects alive; survivor cap is ~0.4 regions.
	for i := 0; i < 180; i++ {
		obj, err := c.Allocate(512, 1, heap.Young)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Heap().AddRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	var promoted uint64
	for _, p := range c.Pauses() {
		promoted += p.PromotedBytes
	}
	if promoted == 0 {
		t.Fatal("survivor overflow did not promote en masse")
	}
}

func TestMixedCollectionCompactsOld(t *testing.T) {
	cfg := testConfig()
	cfg.IHOP = 0.05 // arm mixed collections early
	cfg.TenuringThreshold = 1
	c, err := New(simclock.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Heap()
	// Promote a batch of objects, then kill half of them so old regions
	// hold garbage worth compacting.
	var objs []*heap.Object
	for i := 0; i < 120; i++ {
		obj, err := c.Allocate(512, 1, heap.Young)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	if err := c.ForceCollect(); err != nil { // promotes everything (threshold 1)
		t.Fatal(err)
	}
	for i, obj := range objs {
		if i%2 == 0 {
			if err := h.RemoveRoot(obj.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	sawMixed := false
	for i := 0; i < 10 && !sawMixed; i++ {
		if err := c.ForceCollect(); err != nil {
			t.Fatal(err)
		}
		for _, p := range c.Pauses() {
			if p.Kind == gc.PauseMixed {
				sawMixed = true
			}
		}
	}
	if !sawMixed {
		t.Fatal("mixed collection never ran despite IHOP pressure")
	}
	for _, obj := range objs {
		if h.Object(obj.ID) != nil && obj.Gen != Old && obj.Age < 1 {
			t.Fatalf("object in unexpected state: %v", obj)
		}
	}
}

func TestFullGCOnExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.Heap.MaxBytes = 12 * 16 * 1024 // tight: 12 regions
	cfg.YoungBytes = 4 * 16 * 1024
	c, err := New(simclock.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Heap()
	// Keep ~7 regions alive, then keep allocating garbage: the heap must
	// survive via full GCs rather than erroring out.
	var keep []*heap.Object
	for i := 0; i < 200; i++ {
		obj, err := c.Allocate(512, 1, heap.Young)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
		keep = append(keep, obj)
	}
	for i := 0; i < 600; i++ {
		if _, err := c.Allocate(512, 1, heap.Young); err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
	}
	for _, obj := range keep {
		if h.Object(obj.ID) == nil {
			t.Fatal("full GC lost a live object")
		}
	}
}

func TestPausesAdvanceClockAndAreOrdered(t *testing.T) {
	clk := simclock.New()
	c, err := New(clk, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if _, err := c.Allocate(512, 1, heap.Young); err != nil {
			t.Fatal(err)
		}
	}
	pauses := c.Pauses()
	if len(pauses) == 0 {
		t.Fatal("no pauses recorded")
	}
	var total time.Duration
	var prevEnd time.Duration
	for i, p := range pauses {
		if p.Duration <= 0 {
			t.Fatalf("pause %d has non-positive duration", i)
		}
		if p.Start < prevEnd {
			t.Fatalf("pause %d overlaps previous pause", i)
		}
		prevEnd = p.Start + p.Duration
		total += p.Duration
		if p.Cycle != uint64(i+1) {
			t.Fatalf("pause %d has cycle %d", i, p.Cycle)
		}
	}
	if clk.Now() < total {
		t.Fatalf("clock %v behind accumulated pause time %v", clk.Now(), total)
	}
}

func TestOnCycleEndFires(t *testing.T) {
	c := newCollector(t)
	var cycles []uint64
	c.OnCycleEnd(func(cycle uint64, live *heap.LiveSet) {
		if live == nil {
			t.Error("cycle listener got nil live set")
		}
		cycles = append(cycles, cycle)
	})
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 2 || cycles[0] != 1 || cycles[1] != 2 {
		t.Fatalf("cycle notifications = %v, want [1 2]", cycles)
	}
}

func TestRemsetInvariantAfterCollections(t *testing.T) {
	c := newCollector(t)
	h := c.Heap()
	var prev *heap.Object
	for i := 0; i < 500; i++ {
		obj, err := c.Allocate(256, 1, heap.Young)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := h.AddRoot(obj.ID); err != nil {
				t.Fatal(err)
			}
			if prev != nil && h.Object(prev.ID) != nil {
				if err := h.Link(obj.ID, prev.ID); err != nil {
					t.Fatal(err)
				}
			}
			prev = obj
		}
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("remset invariant broken after collections: %v", bad)
	}
}

func TestHumongousAllocation(t *testing.T) {
	c := newCollector(t)
	h := c.Heap()
	// More than half a 16 KiB region: humongous.
	obj, err := c.Allocate(10*1024, 1, heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Gen != Old {
		t.Fatalf("humongous object in gen %d, want old", obj.Gen)
	}
	region := h.Region(obj.Region)
	if region.ResidentCount() != 1 {
		t.Fatalf("humongous region holds %d objects, want 1", region.ResidentCount())
	}
	if err := h.AddRoot(obj.ID); err != nil {
		t.Fatal(err)
	}
	offset := obj.Offset
	// Collections must never move it.
	for i := 0; i < 3; i++ {
		if err := c.ForceCollect(); err != nil {
			t.Fatal(err)
		}
	}
	if obj.Offset != offset || obj.Gen != Old {
		t.Fatalf("humongous object was moved: %v", obj)
	}
	var copied uint64
	for _, p := range c.Pauses() {
		copied += p.BytesCopied
	}
	if copied != 0 {
		t.Fatalf("humongous object was copied (%d bytes)", copied)
	}
	// Death reclaims the whole region at cleanup.
	if err := h.RemoveRoot(obj.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if h.Object(obj.ID) != nil {
		t.Fatal("dead humongous object not reclaimed")
	}
	if got := h.Region(region.ID()); got != nil {
		t.Fatalf("humongous region not freed: %v", got)
	}
}

func TestHumongousSurvivesFullGC(t *testing.T) {
	cfg := testConfig()
	cfg.Heap.MaxBytes = 12 * 16 * 1024
	cfg.YoungBytes = 4 * 16 * 1024
	c, err := New(simclock.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Heap()
	obj, err := c.Allocate(10*1024, 1, heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(obj.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		if _, err := c.Allocate(512, 1, heap.Young); err != nil {
			t.Fatal(err)
		}
	}
	if h.Object(obj.ID) == nil {
		t.Fatal("humongous object lost under pressure")
	}
	if obj.Gen != Old {
		t.Fatalf("humongous object moved to gen %d", obj.Gen)
	}
}
