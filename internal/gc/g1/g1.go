// Package g1 implements the baseline collector of the POLM2 reproduction: a
// region-based, two-generation, stop-the-world copying collector modeled on
// Garbage First (Detlefs et al., ISMM '04), the default OpenJDK collector
// the paper compares against.
//
// The collector exhibits exactly the pathology the paper attacks (§1, §2.1):
// every object is allocated young; middle- and long-lived objects are copied
// between survivor spaces until the tenuring threshold and then promoted en
// masse into the old generation, and old regions are later compacted by
// mixed collections. All of that copying is charged to stop-the-world pause
// time through the gc.CostModel.
package g1

import (
	"fmt"
	"time"

	"polm2/internal/gc"
	"polm2/internal/heap"
	"polm2/internal/simclock"
)

// Old is the old generation of the two-generation heap.
const Old heap.GenID = 1

// Config parameterizes the collector.
type Config struct {
	// Heap sizes the underlying simulated heap.
	Heap heap.Config
	// Cost converts collection work into pause time. Zero value means
	// gc.DefaultCostModel.
	Cost gc.CostModel
	// YoungBytes caps the young generation (eden + survivor), mirroring
	// the paper's fixed 2 GB young generation (§5.1), scaled.
	YoungBytes uint64
	// SurvivorFraction is the share of YoungBytes reserved for survivor
	// space; overflow is promoted prematurely (en masse). Default 0.15.
	SurvivorFraction float64
	// TenuringThreshold is the number of young collections an object
	// survives before promotion. Default 4.
	TenuringThreshold uint8
	// IHOP is the fraction of total heap occupancy that arms mixed
	// collections. Default 0.45 (the G1 default).
	IHOP float64
	// MaxMixedRegions caps how many old regions one mixed collection
	// evacuates. Default 8.
	MaxMixedRegions int
	// MinMixedGarbage is the minimum garbage fraction a region must
	// have to be evacuated by a mixed collection (G1's liveness
	// threshold: mostly-live regions are not worth copying).
	// Default 0.25.
	MinMixedGarbage float64
}

func (c Config) withDefaults() Config {
	if c.Cost == (gc.CostModel{}) {
		c.Cost = gc.DefaultCostModel()
	}
	if c.SurvivorFraction == 0 {
		c.SurvivorFraction = 0.15
	}
	if c.TenuringThreshold == 0 {
		c.TenuringThreshold = 4
	}
	if c.IHOP == 0 {
		c.IHOP = 0.45
	}
	if c.MaxMixedRegions == 0 {
		c.MaxMixedRegions = 8
	}
	if c.MinMixedGarbage == 0 {
		c.MinMixedGarbage = 0.25
	}
	return c
}

// Collector is the G1-like baseline collector.
type Collector struct {
	h     *heap.Heap
	clock *simclock.Clock
	cfg   Config

	edenCur   *heap.Region
	eden      []*heap.Region
	survivors []*heap.Region
	old       []*heap.Region
	// humongous marks dedicated single-object regions; they are never
	// evacuated, only reclaimed whole when their object dies.
	humongous map[heap.RegionID]bool

	pauses       []gc.Pause
	cycles       uint64
	listeners    []gc.CycleFunc
	mixedPending bool

	// Per-collection scratch, reused across cycles so steady-state
	// collections stay allocation-free on the host.
	csScratch    []*heap.Region
	emptyScratch []*heap.Region
	candScratch  []*heap.Region
	inOldCS      map[heap.RegionID]bool
}

var _ gc.Collector = (*Collector)(nil)

// New builds a G1-like collector over a fresh heap.
func New(clock *simclock.Clock, cfg Config) (*Collector, error) {
	cfg = cfg.withDefaults()
	h, err := heap.New(cfg.Heap)
	if err != nil {
		return nil, fmt.Errorf("g1: %w", err)
	}
	if cfg.YoungBytes == 0 {
		return nil, fmt.Errorf("g1: YoungBytes must be set")
	}
	if cfg.YoungBytes < uint64(h.Config().RegionSize)*2 {
		return nil, fmt.Errorf("g1: YoungBytes %d must hold at least two regions", cfg.YoungBytes)
	}
	return &Collector{h: h, clock: clock, cfg: cfg, humongous: make(map[heap.RegionID]bool)}, nil
}

// Name implements gc.Collector.
func (c *Collector) Name() string { return "G1" }

// Heap implements gc.Collector.
func (c *Collector) Heap() *heap.Heap { return c.h }

// Clock implements gc.Collector.
func (c *Collector) Clock() *simclock.Clock { return c.clock }

// Pauses implements gc.Collector.
func (c *Collector) Pauses() []gc.Pause {
	out := make([]gc.Pause, len(c.pauses))
	copy(out, c.pauses)
	return out
}

// Cycles implements gc.Collector.
func (c *Collector) Cycles() uint64 { return c.cycles }

// MutatorFactor implements gc.Collector. G1's write barriers are already
// priced into the mutator cost baseline, so the factor is 1.
func (c *Collector) MutatorFactor() float64 { return 1.0 }

// OnCycleEnd implements gc.Collector.
func (c *Collector) OnCycleEnd(fn gc.CycleFunc) {
	c.listeners = append(c.listeners, fn)
}

// youngBytes returns committed young-generation bytes.
func (c *Collector) youngBytes() uint64 {
	return uint64(len(c.eden)+len(c.survivors)) * uint64(c.h.Config().RegionSize)
}

// Allocate implements gc.Collector. The target generation is ignored: G1
// has no pretenuring support, which is precisely why the paper needs NG2C.
func (c *Collector) Allocate(size uint32, site heap.SiteID, _ heap.GenID) (*heap.Object, error) {
	regionSize := c.h.Config().RegionSize
	if uint64(size) > uint64(regionSize) {
		return nil, fmt.Errorf("g1: allocation of %d bytes exceeds the region size (%d)", size, regionSize)
	}
	if size > regionSize/2 {
		// Humongous allocation: a dedicated old region, as in G1.
		// The object is never copied; the region is reclaimed whole
		// at cleanup when the object dies.
		r, err := c.h.NewRegion(Old)
		if err != nil {
			if err := c.fullCollect(); err != nil {
				return nil, err
			}
			r, err = c.h.NewRegion(Old)
			if err != nil {
				return nil, fmt.Errorf("g1: heap exhausted after full GC: %w", err)
			}
		}
		c.old = append(c.old, r)
		c.humongous[r.ID()] = true
		obj, err := c.h.Allocate(r, size, site)
		if err != nil {
			return nil, fmt.Errorf("g1: %w", err)
		}
		return obj, nil
	}
	if c.edenCur == nil || c.edenCur.Used()+size > regionSize {
		// Current eden region exhausted: collect if acquiring another
		// would exceed the young cap.
		if c.youngBytes()+uint64(regionSize) > c.cfg.YoungBytes {
			if err := c.collect(); err != nil {
				return nil, err
			}
		}
		r, err := c.h.NewRegion(heap.Young)
		if err != nil {
			// Evacuation space exhausted: fall back to a full
			// collection, as G1 does.
			if err := c.fullCollect(); err != nil {
				return nil, err
			}
			r, err = c.h.NewRegion(heap.Young)
			if err != nil {
				return nil, fmt.Errorf("g1: heap exhausted after full GC: %w", err)
			}
		}
		c.eden = append(c.eden, r)
		c.edenCur = r
	}
	obj, err := c.h.Allocate(c.edenCur, size, site)
	if err != nil {
		return nil, fmt.Errorf("g1: %w", err)
	}
	return obj, nil
}

// ForceCollect implements gc.Collector.
func (c *Collector) ForceCollect() error { return c.collect() }

// collect runs a young or mixed collection depending on whether a mixed
// cycle is armed.
func (c *Collector) collect() error {
	c.armMixedIfNeeded() // occupancy check at collection start, like G1's IHOP
	start := c.clock.Now()
	live := c.h.Trace()

	// Fix the collection set before evacuating: all young regions, plus
	// the most garbage-rich old regions when a mixed cycle is armed.
	cs := c.csScratch[:0]
	cs = append(cs, c.eden...)
	cs = append(cs, c.survivors...)
	kind := gc.PauseYoung

	// Cleanup phase: completely empty old regions are reclaimed without
	// evacuation, as in G1's cleanup pause.
	emptyCS := c.emptyScratch[:0]
	keptOld := c.old[:0]
	for _, r := range c.old {
		if live.Region(r.ID()).Objects == 0 {
			emptyCS = append(emptyCS, r)
		} else {
			keptOld = append(keptOld, r)
		}
	}
	c.old = keptOld

	var oldCS []*heap.Region
	if c.mixedPending && len(c.old) > 0 {
		kind = gc.PauseMixed
		source := c.old
		candidates := c.candScratch[:0]
		regionSize := float64(c.h.Config().RegionSize)
		for _, r := range source {
			if c.humongous[r.ID()] {
				continue // humongous objects are never copied
			}
			garbage := float64(r.Used()) - float64(live.Region(r.ID()).Bytes)
			if garbage >= c.cfg.MinMixedGarbage*regionSize {
				candidates = append(candidates, r)
			}
		}
		gc.SortRegionsByGarbage(candidates, live)
		n := c.cfg.MaxMixedRegions
		if n > len(candidates) {
			n = len(candidates)
		}
		oldCS = candidates[:n]
		cs = append(cs, oldCS...)
	}

	remset := 0
	for _, r := range cs {
		remset += r.RemsetEntries()
	}

	survivorCap := uint64(float64(c.cfg.YoungBytes) * c.cfg.SurvivorFraction)
	survivorCursor := gc.NewCursor(c.h, heap.Young)
	oldCursor := gc.NewCursor(c.h, Old)

	if c.inOldCS == nil {
		c.inOldCS = make(map[heap.RegionID]bool, len(oldCS))
	} else {
		clear(c.inOldCS)
	}
	inOldCS := c.inOldCS
	for _, r := range oldCS {
		inOldCS[r.ID()] = true
	}

	var promotedBytes uint64
	place := func(obj *heap.Object) error {
		if inOldCS[obj.Region] {
			// Old-region compaction: stays old.
			return oldCursor.Place(obj)
		}
		obj.Age++
		if obj.Age >= c.cfg.TenuringThreshold ||
			survivorCursor.Bytes()+uint64(obj.Size) > survivorCap {
			// Tenured — or survivor space overflow, the paper's
			// "premature en masse promotion" (§5.1).
			promotedBytes += uint64(obj.Size)
			return oldCursor.Place(obj)
		}
		return survivorCursor.Place(obj)
	}

	freed := 0
	for _, r := range cs {
		if _, _, err := gc.EvacuateAndFree(c.h, r, live, place); err != nil {
			return fmt.Errorf("g1: %s collection: %w", kind, err)
		}
		freed++
	}
	for _, r := range emptyCS {
		gc.SweepRegion(c.h, r, live)
		c.h.FreeRegion(r)
		delete(c.humongous, r.ID())
		freed++
	}

	// Rebuild space bookkeeping.
	c.eden = nil
	c.edenCur = nil
	c.survivors = survivorCursor.Regions()
	if len(oldCS) > 0 {
		kept := c.old[:0]
		for _, r := range c.old {
			if !inOldCS[r.ID()] {
				kept = append(kept, r)
			}
		}
		c.old = kept
		c.mixedPending = false
	}
	c.old = append(c.old, oldCursor.Regions()...)

	// Return the grown scratch backings for the next cycle.
	c.csScratch = cs[:0]
	c.emptyScratch = emptyCS[:0]
	if cap(oldCS) > cap(c.candScratch) {
		c.candScratch = oldCS[:0]
	}

	copiedBytes := survivorCursor.Bytes() + oldCursor.Bytes()
	copiedObjects := survivorCursor.Objects() + oldCursor.Objects()
	dur := c.cfg.Cost.EvacuationCost(len(cs)+len(emptyCS), remset, copiedBytes, copiedObjects)
	c.clock.Advance(dur)
	c.cycles++
	c.pauses = append(c.pauses, gc.Pause{
		Start:            start,
		Duration:         dur,
		Kind:             kind,
		Cycle:            c.cycles,
		BytesCopied:      copiedBytes,
		ObjectsCopied:    copiedObjects,
		RegionsCollected: len(cs) + len(emptyCS),
		RegionsFreed:     freed,
		PromotedBytes:    promotedBytes,
	})
	c.armMixedIfNeeded()
	c.notify(live)
	return nil
}

// fullCollect compacts the entire heap into fresh old regions. It is the
// collector's response to evacuation failure.
func (c *Collector) fullCollect() error {
	start := c.clock.Now()
	live := c.h.Trace()
	cursor := gc.NewCursor(c.h, Old)
	regions := c.h.ActiveRegions()
	remset := 0
	for _, r := range regions {
		remset += r.RemsetEntries()
	}
	var keptHumongous []*heap.Region
	for _, r := range regions {
		if c.humongous[r.ID()] {
			// Humongous objects stay in place; dead ones free
			// their region whole.
			gc.SweepRegion(c.h, r, live)
			if r.ResidentCount() == 0 {
				c.h.FreeRegion(r)
				delete(c.humongous, r.ID())
			} else {
				keptHumongous = append(keptHumongous, r)
			}
			continue
		}
		if _, _, err := gc.EvacuateAndFree(c.h, r, live, cursor.Place); err != nil {
			return fmt.Errorf("g1: full collection: %w", err)
		}
	}
	c.eden = nil
	c.edenCur = nil
	c.survivors = nil
	c.old = append(cursor.Regions(), keptHumongous...)
	c.mixedPending = false

	dur := c.cfg.Cost.EvacuationCost(len(regions), remset, cursor.Bytes(), cursor.Objects()) +
		time.Duration(live.Objects)*c.cfg.Cost.PerTracedObject
	c.clock.Advance(dur)
	c.cycles++
	c.pauses = append(c.pauses, gc.Pause{
		Start:            start,
		Duration:         dur,
		Kind:             gc.PauseFull,
		Cycle:            c.cycles,
		BytesCopied:      cursor.Bytes(),
		ObjectsCopied:    cursor.Objects(),
		RegionsCollected: len(regions),
		RegionsFreed:     len(regions),
	})
	c.armMixedIfNeeded()
	c.notify(live)
	return nil
}

func (c *Collector) armMixedIfNeeded() {
	max := c.h.Config().MaxBytes
	if max == 0 {
		return
	}
	if float64(c.h.Stats().CommittedBytes) > c.cfg.IHOP*float64(max) {
		c.mixedPending = true
	}
}

func (c *Collector) notify(live *heap.LiveSet) {
	for _, fn := range c.listeners {
		fn(c.cycles, live)
	}
}

// OldRegions returns the number of old-generation regions (test hook).
func (c *Collector) OldRegions() int { return len(c.old) }

// SurvivorRegions returns the number of survivor regions (test hook).
func (c *Collector) SurvivorRegions() int { return len(c.survivors) }
