package torture

import (
	"math/rand"
	"testing"

	"polm2/internal/analyzer"
	"polm2/internal/gc"
	"polm2/internal/heap"
	"polm2/internal/instrument"
	"polm2/internal/jvm"
)

// youngPlan is a hand-rolled jvm.Plan for collectors without dynamic
// generations (G1, C4): it exercises the whole instrumentation path —
// setGeneration pairs around calls, @Gen annotations on allocations —
// with every directive resolving to the young generation.
type youngPlan struct {
	calls  map[jvm.CodeLoc]bool
	allocs map[jvm.CodeLoc]bool
}

func (p *youngPlan) CallGen(loc jvm.CodeLoc) (heap.GenID, bool) {
	return heap.Young, p.calls[loc]
}

func (p *youngPlan) AllocGen(loc jvm.CodeLoc) (heap.GenID, bool, bool) {
	if p.allocs[loc] {
		return heap.Young, true, true
	}
	return 0, false, false
}

func mustLoc(t *testing.T, s string) jvm.CodeLoc {
	t.Helper()
	loc, err := jvm.ParseCodeLoc(s)
	if err != nil {
		t.Fatal(err)
	}
	return loc
}

// swapPlans builds the rotation of instrumentation plans for one
// collector: profile-derived multi-generation plans when the collector
// pretenures (NG2C), young-targeting structural plans otherwise, and nil
// (uninstrumented) in both cases.
func swapPlans(t *testing.T, col gc.Collector) []jvm.Plan {
	t.Helper()
	if pret, ok := col.(gc.Pretenuring); ok {
		a, err := instrument.Apply(&analyzer.Profile{
			Generations: 2,
			Calls:       []analyzer.CallDirective{{Loc: "Main.run:5", Gen: 1}},
			Allocs:      []analyzer.AllocDirective{{Loc: "Helper.make:3", Gen: 2, Direct: true}},
		}, pret)
		if err != nil {
			t.Fatal(err)
		}
		b, err := instrument.Apply(&analyzer.Profile{
			Generations: 1,
			Calls:       []analyzer.CallDirective{{Loc: "Main.run:7", Gen: 1}},
			Allocs:      []analyzer.AllocDirective{{Loc: "Helper.make:3", Gen: 0}},
		}, pret)
		if err != nil {
			t.Fatal(err)
		}
		return []jvm.Plan{a, nil, b}
	}
	a := &youngPlan{
		calls:  map[jvm.CodeLoc]bool{mustLoc(t, "Main.run:5"): true},
		allocs: map[jvm.CodeLoc]bool{mustLoc(t, "Helper.make:3"): true},
	}
	b := &youngPlan{
		calls: map[jvm.CodeLoc]bool{mustLoc(t, "Main.run:7"): true},
	}
	return []jvm.Plan{a, nil, b}
}

// tortureWithPlanSwaps drives the randomized mutator through the engine
// (so instrumentation applies) while the installed plan is hot-swapped
// mid-run, the way the online mode swaps plans after each re-analysis.
// The liveness and bookkeeping invariants must hold across every swap.
func tortureWithPlanSwaps(t *testing.T, name string, col gc.Collector, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vm := jvm.New(col)
	h := col.Heap()
	plans := swapPlans(t, col)

	th := vm.NewThread("torture")
	th.Enter("Main", "run")

	type tracked struct {
		obj *heap.Object
		ttl int
	}
	var live []tracked

	const steps = 20000
	const swapEvery = steps / 8
	for step := 0; step < steps; step++ {
		if step%swapEvery == 0 {
			vm.SetPlan(plans[(step/swapEvery)%len(plans)])
		}
		size := uint32(32 + rng.Intn(2048))
		if rng.Intn(400) == 0 {
			size = uint32(17*1024 + rng.Intn(8*1024)) // humongous
		}
		var obj *heap.Object
		var err error
		switch rng.Intn(3) {
		case 0:
			// Through the instrumented call sites, so CallGen and
			// AllocGen directives actually fire.
			line := 5
			if rng.Intn(2) == 0 {
				line = 7
			}
			th.Call(line, "Helper", "make")
			obj, err = th.Alloc(3, size)
			th.Return()
		default:
			obj, err = th.Alloc(10+rng.Intn(10), size)
		}
		if err != nil {
			t.Fatalf("%s: step %d: %v", name, step, err)
		}
		if rng.Intn(5) == 0 {
			if err := h.AddRoot(obj.ID); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			live = append(live, tracked{obj: obj, ttl: 10 + rng.Intn(3000)})
			if len(live) > 1 && rng.Intn(2) == 0 {
				other := live[rng.Intn(len(live))]
				if h.Object(other.obj.ID) != nil {
					if err := h.Link(obj.ID, other.obj.ID); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				}
			}
		}
		if step%32 == 0 {
			// Drop the frame's stack pins so unrooted objects can die.
			th.ReleaseLocals()
			kept := live[:0]
			for _, tr := range live {
				tr.ttl -= 32
				if tr.ttl <= 0 {
					if err := h.RemoveRoot(tr.obj.ID); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					continue
				}
				kept = append(kept, tr)
			}
			live = kept
		}
		if rng.Intn(4000) == 0 {
			if err := col.ForceCollect(); err != nil {
				t.Fatalf("%s: forced collection: %v", name, err)
			}
		}
	}

	for _, tr := range live {
		if h.Object(tr.obj.ID) == nil {
			t.Fatalf("%s: live object %#x lost across plan swaps", name, uint64(tr.obj.ID))
		}
	}
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("%s: remset invariant broken in %v", name, bad)
	}
	if bad := h.CheckPageInvariant(); len(bad) != 0 {
		t.Fatalf("%s: page invariant broken in %v", name, bad)
	}

	// After removing the plan, the roots and the pins, the heap drains.
	vm.SetPlan(nil)
	th.ReleaseLocals()
	for _, tr := range live {
		if err := h.RemoveRoot(tr.obj.ID); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := col.ForceCollect(); err != nil {
			t.Fatalf("%s: drain collection: %v", name, err)
		}
	}
	if got := h.Stats().Objects; got != 0 {
		t.Fatalf("%s: %d objects survived a full drain", name, got)
	}
	if got := h.RootCount(); got != 0 {
		t.Fatalf("%s: %d roots leaked", name, got)
	}
	if vm.GenSwitches() == 0 {
		t.Fatalf("%s: no dynamic generation switches — the plans never fired", name)
	}
}

func TestTorturePlanSwaps(t *testing.T) {
	if testing.Short() {
		t.Skip("torture skipped in -short mode")
	}
	for _, seed := range []int64{1, 42} {
		for name, col := range collectors(t) {
			name, col, seed := name, col, seed
			t.Run(name, func(t *testing.T) {
				tortureWithPlanSwaps(t, name, col, seed)
			})
		}
	}
}
