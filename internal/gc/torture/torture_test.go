// Package torture stress-tests every collector with a randomized mutator:
// objects of random sizes and lifetimes, random reference graphs, forced
// and allocation-triggered collections — asserting after every phase that
// no live object is lost, no dead object survives forever, and the heap's
// incremental bookkeeping invariants hold.
package torture

import (
	"math/rand"
	"testing"

	"polm2/internal/gc"
	"polm2/internal/gc/c4"
	"polm2/internal/gc/g1"
	"polm2/internal/gc/ng2c"
	"polm2/internal/heap"
	"polm2/internal/simclock"
)

func collectors(t *testing.T) map[string]gc.Collector {
	t.Helper()
	heapCfg := heap.Config{
		RegionSize: 32 * 1024,
		PageSize:   4096,
		MaxBytes:   256 * 32 * 1024,
	}
	g1Col, err := g1.New(simclock.New(), g1.Config{Heap: heapCfg, YoungBytes: 8 * 32 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	ng2cCol, err := ng2c.New(simclock.New(), ng2c.Config{Heap: heapCfg, YoungBytes: 8 * 32 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	c4Col, err := c4.New(simclock.New(), c4.Config{Heap: heapCfg})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]gc.Collector{"G1": g1Col, "NG2C": ng2cCol, "C4": c4Col}
}

// torture runs the randomized mutator against one collector.
func torture(t *testing.T, name string, col gc.Collector, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := col.Heap()

	type tracked struct {
		obj *heap.Object
		ttl int // steps until unrooted
	}
	var live []tracked
	var dynamicGens []heap.GenID
	if pret, ok := col.(gc.Pretenuring); ok {
		for i := 0; i < 3; i++ {
			dynamicGens = append(dynamicGens, pret.NewGeneration())
		}
	}

	const steps = 30000
	for step := 0; step < steps; step++ {
		target := heap.Young
		if len(dynamicGens) > 0 && rng.Intn(4) == 0 {
			target = dynamicGens[rng.Intn(len(dynamicGens))]
		}
		size := uint32(32 + rng.Intn(2048))
		if rng.Intn(200) == 0 {
			size = uint32(17*1024 + rng.Intn(8*1024)) // humongous
		}
		obj, err := col.Allocate(size, heap.SiteID(rng.Intn(20)+1), target)
		if err != nil {
			t.Fatalf("%s: step %d: %v", name, step, err)
		}
		// ~20% of objects are retained for a random while; the rest
		// die immediately.
		if rng.Intn(5) == 0 {
			if err := h.AddRoot(obj.ID); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			live = append(live, tracked{obj: obj, ttl: 10 + rng.Intn(4000)})
			// Random edges between retained objects.
			if len(live) > 1 && rng.Intn(2) == 0 {
				other := live[rng.Intn(len(live))]
				if h.Object(other.obj.ID) != nil {
					if err := h.Link(obj.ID, other.obj.ID); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				}
			}
		}
		// Age the retained set.
		if step%64 == 0 {
			kept := live[:0]
			for _, tr := range live {
				tr.ttl -= 64
				if tr.ttl <= 0 {
					if err := h.RemoveRoot(tr.obj.ID); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					continue
				}
				kept = append(kept, tr)
			}
			live = kept
		}
		if rng.Intn(5000) == 0 {
			if err := col.ForceCollect(); err != nil {
				t.Fatalf("%s: forced collection: %v", name, err)
			}
		}
	}

	// Every rooted object must have survived.
	for _, tr := range live {
		if h.Object(tr.obj.ID) == nil {
			t.Fatalf("%s: live object %#x lost", name, uint64(tr.obj.ID))
		}
	}
	// Invariants hold.
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("%s: remset invariant broken in %v", name, bad)
	}
	if bad := h.CheckPageInvariant(); len(bad) != 0 {
		t.Fatalf("%s: page invariant broken in %v", name, bad)
	}
	// After unrooting everything and collecting, the heap drains.
	for _, tr := range live {
		if err := h.RemoveRoot(tr.obj.ID); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := col.ForceCollect(); err != nil {
			t.Fatalf("%s: drain collection: %v", name, err)
		}
	}
	if got := h.Stats().Objects; got != 0 {
		t.Fatalf("%s: %d objects survived a full drain", name, got)
	}
	if got := h.RootCount(); got != 0 {
		t.Fatalf("%s: %d roots leaked", name, got)
	}
}

func TestTortureAllCollectors(t *testing.T) {
	if testing.Short() {
		t.Skip("torture skipped in -short mode")
	}
	for _, seed := range []int64{1, 42} {
		for name, col := range collectors(t) {
			name, col, seed := name, col, seed
			t.Run(name, func(t *testing.T) {
				torture(t, name, col, seed)
			})
		}
	}
}
