package gc

import (
	"fmt"
	"slices"
	"sort"

	"polm2/internal/heap"
)

// Cursor places evacuated objects into destination regions of one
// generation, committing fresh regions as the current one fills. It is the
// shared building block of every copying collection in this reproduction.
type Cursor struct {
	h       *heap.Heap
	gen     heap.GenID
	regions []*heap.Region
	cur     *heap.Region
	bytes   uint64
	objects int
}

// NewCursor returns a cursor that evacuates into generation gen.
func NewCursor(h *heap.Heap, gen heap.GenID) *Cursor {
	return &Cursor{h: h, gen: gen}
}

// Place evacuates obj into the cursor's generation.
func (c *Cursor) Place(obj *heap.Object) error {
	if c.cur == nil || c.cur.Used()+obj.Size > c.h.Config().RegionSize {
		r, err := c.h.NewRegion(c.gen)
		if err != nil {
			return fmt.Errorf("gc: acquiring evacuation region: %w", err)
		}
		c.regions = append(c.regions, r)
		c.cur = r
	}
	if err := c.h.Evacuate(obj, c.cur); err != nil {
		return fmt.Errorf("gc: evacuating %v: %w", obj, err)
	}
	c.bytes += uint64(obj.Size)
	c.objects++
	return nil
}

// Regions returns the destination regions committed so far.
func (c *Cursor) Regions() []*heap.Region {
	out := make([]*heap.Region, len(c.regions))
	copy(out, c.regions)
	return out
}

// Bytes returns the total bytes evacuated through the cursor.
func (c *Cursor) Bytes() uint64 { return c.bytes }

// Objects returns the number of objects evacuated through the cursor.
func (c *Cursor) Objects() int { return c.objects }

// Gen returns the cursor's destination generation.
func (c *Cursor) Gen() heap.GenID { return c.gen }

// LiveResidents returns the live residents of region r in ascending id
// order. Evacuation order determines placement offsets, so it must be
// deterministic for the simulation to stay bit-reproducible. The returned
// slice is the heap's scratch buffer: it is only valid until the next
// LiveResidents call on the same heap, which is fine for the collectors'
// evacuate-then-discard usage.
func LiveResidents(h *heap.Heap, r *heap.Region, live *heap.LiveSet) []*heap.Object {
	scratch := h.ObjectScratch()
	out := (*scratch)[:0]
	r.EachResident(func(obj *heap.Object) {
		if live.Marked(obj) {
			out = append(out, obj)
		}
	})
	slices.SortFunc(out, func(a, b *heap.Object) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	*scratch = out
	return out
}

// SweepRegion removes every dead resident of r and returns the count and
// bytes of removed garbage. After a sweep and all its live objects'
// evacuation, the region is empty and can be freed.
//
// The sweep walks the region's intrusive resident list, whose insertion
// order is deterministic by construction, so no staging slice or sort is
// needed. Removal order never reaches the simulation's output: it only
// permutes page header lists, which the Analyzer consumes as sets.
func SweepRegion(h *heap.Heap, r *heap.Region, live *heap.LiveSet) (objects int, bytes uint64) {
	for obj := r.FirstResident(); obj != nil; {
		next := obj.NextResident()
		if !live.Marked(obj) {
			bytes += uint64(obj.Size)
			objects++
			h.Remove(obj)
		}
		obj = next
	}
	return objects, bytes
}

// EvacuateAndFree evacuates each live resident of r via place, sweeps the
// dead ones, and frees the region. It returns the garbage statistics from
// the sweep.
func EvacuateAndFree(h *heap.Heap, r *heap.Region, live *heap.LiveSet, place func(*heap.Object) error) (deadObjects int, deadBytes uint64, err error) {
	for _, obj := range LiveResidents(h, r, live) {
		if err := place(obj); err != nil {
			return 0, 0, err
		}
	}
	deadObjects, deadBytes = SweepRegion(h, r, live)
	h.FreeRegion(r)
	return deadObjects, deadBytes, nil
}

// SortRegionsByGarbage orders regions by descending dead-byte count under
// the given live set — G1's "garbage first" mixed-collection heuristic.
// Ties break on region id for determinism.
func SortRegionsByGarbage(regions []*heap.Region, live *heap.LiveSet) {
	garbage := func(r *heap.Region) uint64 {
		return uint64(r.Used()) - live.Region(r.ID()).Bytes
	}
	sort.Slice(regions, func(i, j int) bool {
		gi, gj := garbage(regions[i]), garbage(regions[j])
		if gi != gj {
			return gi > gj
		}
		return regions[i].ID() < regions[j].ID()
	})
}
