package gc

import (
	"time"

	"polm2/internal/trace"
)

// Pause tracing: every stop-the-world pause becomes one "gc"/"cycle" span
// plus one "gc"/"phase" span per cost-model component. The breakdown is
// derived from the pause's work counters under the cost model rather than
// instrumented inside the collectors — the same arithmetic that priced the
// pause re-prices its parts, so the trace is byte-deterministic, adds
// nothing to the collection hot path, and the phase durations always sum
// to the pause duration.

// PhaseCost is one component of a pause's duration.
type PhaseCost struct {
	// Name is the phase: "safepoint" (fixed safepoint + root scan),
	// "region" (per-region bookkeeping), "evacuate" (object copying),
	// "scan" (remembered-set scanning and, for full GCs, heap tracing —
	// the residual the work counters on Pause cannot split further).
	Name string
	// Duration is the phase's share of the pause.
	Duration time.Duration
}

// PhaseBreakdown decomposes a pause into the cost model's phases. The
// phases sum exactly to p.Duration: the first three are recomputed from
// the pause's work counters, and "scan" is the remainder (clamped at zero
// against a mismatched cost model).
func (m CostModel) PhaseBreakdown(p Pause) [4]PhaseCost {
	safepoint := m.Base
	region := time.Duration(p.RegionsCollected) * m.PerRegion
	evacuate := time.Duration(p.BytesCopied)*m.PerCopiedByte +
		time.Duration(p.ObjectsCopied)*m.PerCopiedObject
	scan := p.Duration - safepoint - region - evacuate
	if scan < 0 {
		scan = 0
	}
	return [4]PhaseCost{
		{Name: "safepoint", Duration: safepoint},
		{Name: "region", Duration: region},
		{Name: "evacuate", Duration: evacuate},
		{Name: "scan", Duration: scan},
	}
}

// TraceCycle emits one pause as a cycle span with its phase spans. The
// guarded early return is the entire cost when tracing is off; the
// benchmark suite (cycle_bench_test.go) pins that at zero allocations on
// the GC hot path.
func TraceCycle(t *trace.Tracer, m CostModel, p Pause) {
	if !t.Enabled() {
		return
	}
	t.Span("gc", "cycle", p.Start, p.Duration,
		trace.Uint64("cycle", p.Cycle),
		trace.String("gc_kind", p.Kind.String()),
		trace.Uint64("bytes_copied", p.BytesCopied),
		trace.Int64("objects_copied", int64(p.ObjectsCopied)),
		trace.Int64("regions_collected", int64(p.RegionsCollected)),
		trace.Int64("regions_freed", int64(p.RegionsFreed)),
		trace.Uint64("promoted_bytes", p.PromotedBytes))
	at := p.Start
	for _, ph := range m.PhaseBreakdown(p) {
		t.Span("gc", "phase", at, ph.Duration,
			trace.Uint64("cycle", p.Cycle),
			trace.String("phase", ph.Name))
		at += ph.Duration
	}
}

// TracePauses emits a whole run's pauses in order (the simulation emits
// them after the run: pause spans carry their own simulated start
// instants, so emission order and timestamp order are independent).
func TracePauses(t *trace.Tracer, m CostModel, pauses []Pause) {
	if !t.Enabled() {
		return
	}
	for _, p := range pauses {
		TraceCycle(t, m, p)
	}
}
