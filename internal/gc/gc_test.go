package gc

import (
	"slices"
	"testing"
	"time"

	"polm2/internal/heap"
)

func TestPauseKindString(t *testing.T) {
	tests := []struct {
		kind PauseKind
		want string
	}{
		{PauseYoung, "young"},
		{PauseMixed, "mixed"},
		{PauseFull, "full"},
		{PauseConcurrent, "concurrent"},
		{PauseKind(0), "invalid"},
	}
	for _, tc := range tests {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("PauseKind(%d).String() = %q, want %q", tc.kind, got, tc.want)
		}
	}
}

func TestEvacuationCost(t *testing.T) {
	m := CostModel{
		Base:            time.Millisecond,
		PerRegion:       10 * time.Microsecond,
		PerRemsetEntry:  100 * time.Nanosecond,
		PerCopiedByte:   1 * time.Nanosecond,
		PerCopiedObject: 200 * time.Nanosecond,
	}
	got := m.EvacuationCost(2, 10, 1000, 5)
	want := time.Millisecond + 20*time.Microsecond + time.Microsecond + time.Microsecond + time.Microsecond
	if got != want {
		t.Fatalf("EvacuationCost = %v, want %v", got, want)
	}
}

func TestDefaultCostModelNonZero(t *testing.T) {
	m := DefaultCostModel()
	if m.Base <= 0 || m.PerCopiedByte <= 0 || m.PerRemsetEntry <= 0 {
		t.Fatalf("default cost model has zero components: %+v", m)
	}
}

func newHeap(t *testing.T) *heap.Heap {
	t.Helper()
	h, err := heap.New(heap.Config{RegionSize: 16 * 1024, PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCursorSpillsAcrossRegions(t *testing.T) {
	h := newHeap(t)
	var objs []*heap.Object
	for i := 0; i < 3; i++ {
		src, err := h.NewRegion(heap.Young)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := h.Allocate(src, 6000, 1)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	cur := NewCursor(h, heap.GenID(2))
	for _, obj := range objs {
		if err := cur.Place(obj); err != nil {
			t.Fatal(err)
		}
	}
	// 3 x 6000 bytes do not fit one 16 KiB region: the cursor must have
	// committed a second one.
	if len(cur.Regions()) != 2 {
		t.Fatalf("cursor regions = %d, want 2", len(cur.Regions()))
	}
	if cur.Bytes() != 18000 || cur.Objects() != 3 {
		t.Fatalf("cursor stats = %d bytes / %d objects", cur.Bytes(), cur.Objects())
	}
	if cur.Gen() != 2 {
		t.Fatalf("cursor gen = %d, want 2", cur.Gen())
	}
	for _, obj := range objs {
		if obj.Gen != 2 {
			t.Fatalf("object not regenerated: %v", obj)
		}
	}
}

func TestSweepAndEvacuateAndFree(t *testing.T) {
	h := newHeap(t)
	r, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	liveObj, err := h.Allocate(r, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Allocate(r, 200, 1); err != nil { // dead
		t.Fatal(err)
	}
	if err := h.AddRoot(liveObj.ID); err != nil {
		t.Fatal(err)
	}
	live := h.Trace()

	cur := NewCursor(h, heap.GenID(1))
	deadObjects, deadBytes, err := EvacuateAndFree(h, r, live, cur.Place)
	if err != nil {
		t.Fatal(err)
	}
	if deadObjects != 1 || deadBytes != 200 {
		t.Fatalf("dead = %d objects / %d bytes, want 1/200", deadObjects, deadBytes)
	}
	if !r.Freed() {
		t.Fatal("source region not freed")
	}
	if h.Object(liveObj.ID) == nil {
		t.Fatal("live object lost")
	}
	if liveObj.Gen != 1 {
		t.Fatal("live object not evacuated")
	}
}

func TestLiveResidentsDeterministicOrder(t *testing.T) {
	h := newHeap(t)
	r, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		obj, err := h.Allocate(r, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
	}
	live := h.Trace()
	// LiveResidents returns the heap's scratch buffer, so the first result
	// must be copied before the second call.
	a := slices.Clone(LiveResidents(h, r, live))
	b := LiveResidents(h, r, live)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("LiveResidents order not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].ID >= a[i].ID {
			t.Fatal("LiveResidents not sorted by id")
		}
	}
}

func TestSortRegionsByGarbage(t *testing.T) {
	h := newHeap(t)
	mostlyDead, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	mostlyLive, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	// mostlyDead: 8000 dead bytes; mostlyLive: 8000 live bytes.
	if _, err := h.Allocate(mostlyDead, 8000, 1); err != nil {
		t.Fatal(err)
	}
	obj, err := h.Allocate(mostlyLive, 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(obj.ID); err != nil {
		t.Fatal(err)
	}
	live := h.Trace()
	regions := []*heap.Region{mostlyLive, mostlyDead}
	SortRegionsByGarbage(regions, live)
	if regions[0] != mostlyDead {
		t.Fatal("garbage-first ordering wrong")
	}
}
