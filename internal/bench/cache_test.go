package bench

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoSingleFlight(t *testing.T) {
	var c memo[int]
	var computes atomic.Int64
	var wg sync.WaitGroup
	results := make([]int, 50)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.get("k", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for _, v := range results {
		if v != 42 {
			t.Fatalf("got %d, want 42", v)
		}
	}
}

func TestMemoCachesErrors(t *testing.T) {
	var c memo[int]
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.get("k", func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failed compute retried %d times, want 1", calls)
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	var c memo[string]
	a, _ := c.get("a", func() (string, error) { return "A", nil })
	b, _ := c.get("b", func() (string, error) { return "B", nil })
	if a != "A" || b != "B" {
		t.Fatalf("got %q/%q", a, b)
	}
}

func TestMemoFill(t *testing.T) {
	var c memo[int]
	c.fill("k", 7)
	v, err := c.get("k", func() (int, error) {
		t.Fatal("compute ran for a filled key")
		return 0, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("got %d, %v", v, err)
	}

	// fill after a computation is a no-op.
	var d memo[int]
	if v, _ := d.get("k", func() (int, error) { return 1, nil }); v != 1 {
		t.Fatal("compute result lost")
	}
	d.fill("k", 2)
	if v, _ := d.get("k", nil); v != 1 {
		t.Fatal("fill overwrote a computed value")
	}
}

// TestMemoNestedGet ensures a compute function may fetch another key from
// the same memo — the Run cache computes profiles through the profile
// cache this way.
func TestMemoNestedGet(t *testing.T) {
	var c memo[int]
	v, err := c.get("outer", func() (int, error) {
		inner, err := c.get("inner", func() (int, error) { return 2, nil })
		return inner * 10, err
	})
	if err != nil || v != 20 {
		t.Fatalf("got %d, %v", v, err)
	}
}
