package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"polm2/internal/core"
)

// The parallel experiment runner. A benchmark session's experiments share
// expensive simulations through the Session caches; the runner makes those
// simulations explicit as a work plan, executes the plan on a bounded
// worker pool, and only then renders the experiments — serially, against
// warm caches — so the rendered output is byte-identical no matter how many
// workers computed it.
//
// The plan runs in two waves: profiling runs first, production runs second.
// A production run under the POLM2 plan consumes its target's profile, so
// the wave barrier guarantees no worker ever blocks on a simulation another
// worker still owns — every dependency of wave 2 is cache-resident when
// wave 2 starts.

// ParallelOptions configures RunExperiments.
type ParallelOptions struct {
	// Workers bounds the number of concurrently executing simulations.
	// Values below 1 mean serial execution. Worker count never affects
	// results, only wall-clock time.
	Workers int
	// Progress, if non-nil, receives one human-readable line per completed
	// simulation and per rendered experiment. Calls are serialized.
	Progress func(line string)
}

// Report describes one RunExperiments invocation. The Experiments slice
// (names and rendered output) is deterministic for a fixed Config; the
// wall-clock fields measure the host machine and vary run to run.
type Report struct {
	// Workers is the worker bound the plan executed under.
	Workers int `json:"workers"`
	// Seed is the session's base seed.
	Seed int64 `json:"seed"`
	// Experiments holds each experiment's rendered output in request order.
	Experiments []ExperimentReport `json:"experiments"`
	// Units holds per-simulation timings, sorted by wave then key.
	Units []UnitReport `json:"units"`
	// TotalWallMS is the whole invocation's wall-clock time.
	TotalWallMS int64 `json:"total_wall_ms"`
}

// ExperimentReport is one experiment's rendered output and render time.
type ExperimentReport struct {
	Name   string `json:"name"`
	Output string `json:"output"`
	WallMS int64  `json:"wall_ms"`
}

// UnitReport is one simulation's identity and wall-clock time.
type UnitReport struct {
	// Key identifies the simulation, e.g. "profile:Cassandra-WI" or
	// "run:Lucene/NG2C/polm2".
	Key string `json:"key"`
	// Wave is "profile" or "run".
	Wave string `json:"wave"`
	// WallMS is the simulation's wall-clock time on its worker.
	WallMS int64 `json:"wall_ms"`
}

const (
	waveProfile = 1
	waveRun     = 2
)

// workUnit is one simulation of the prefetch plan. Its do func fills a
// Session cache entry; re-running a unit is always a cache hit.
type workUnit struct {
	key  string
	wave int
	do   func() error
}

// workPlan accumulates the deduplicated simulations a set of experiments
// needs, in deterministic order.
type workPlan struct {
	s *Session
	// compareNeeded marks targets whose profile must also take jmap
	// comparison dumps (fig3/fig4). A comparison profile doubles as the
	// plain profile, so such targets get one compare unit instead of a
	// plain profile unit.
	compareNeeded map[string]bool
	seen          map[string]bool
	units         []workUnit
}

func newWorkPlan(s *Session) *workPlan {
	return &workPlan{
		s:             s,
		compareNeeded: make(map[string]bool),
		seen:          make(map[string]bool),
	}
}

func (p *workPlan) add(key string, wave int, do func() error) {
	if p.seen[key] {
		return
	}
	p.seen[key] = true
	p.units = append(p.units, workUnit{key: key, wave: wave, do: do})
}

// profile schedules target t's profiling run — as a comparison profile when
// some requested experiment needs the jmap dumps, since that one simulation
// serves both caches.
func (p *workPlan) profile(t Target) {
	if p.compareNeeded[t.Key()] {
		p.add("compare:"+t.Key(), waveProfile, func() error {
			_, err := p.s.ProfileWithJmap(t)
			return err
		})
		return
	}
	p.add("profile:"+t.Key(), waveProfile, func() error {
		_, err := p.s.Profile(t)
		return err
	})
}

// profileUnit schedules an ablation profile variant.
func (p *workPlan) profileUnit(key string, do func() error) {
	p.add("profile:"+key, waveProfile, do)
}

func runKey(t Target, collectorName string, plan core.PlanKind) string {
	return fmt.Sprintf("%s/%s/%s", t.Key(), collectorName, plan)
}

// run schedules a production run, plus the profile it consumes when the
// plan is POLM2's.
func (p *workPlan) run(t Target, collectorName string, plan core.PlanKind) {
	if plan == core.PlanPOLM2 {
		p.profile(t)
	}
	p.add("run:"+runKey(t, collectorName, plan), waveRun, func() error {
		_, err := p.s.Run(t, collectorName, plan)
		return err
	})
}

// runUnit schedules an ablation run variant.
func (p *workPlan) runUnit(key string, do func() error) {
	p.add("run:"+key, waveRun, do)
}

// require adds experiment name's simulations to the plan. The switch
// mirrors the fetches in the experiment renderers; keeping them in sync is
// not load-bearing for correctness — a missed requirement only means the
// render phase computes it serially on the cache-miss path.
func (p *workPlan) require(name string) error {
	s := p.s
	switch name {
	case "table1":
		for _, t := range Targets() {
			p.profile(t)
		}
	case "fig3", "fig4":
		for _, t := range Targets() {
			p.profile(t) // compareNeeded marks these as compare units
		}
	case "fig5", "fig6":
		for _, t := range Targets() {
			for _, su := range pauseSetups() {
				p.run(t, su.collector, su.plan)
			}
		}
	case "fig7", "fig9":
		for _, t := range Targets() {
			for _, su := range pauseSetups() {
				p.run(t, su.collector, su.plan)
			}
			if t.App.Name() == "Cassandra" {
				p.run(t, core.CollectorC4, core.PlanNone)
			}
		}
	case "fig8":
		for _, t := range Targets() {
			if t.App.Name() != "Cassandra" {
				continue
			}
			p.run(t, core.CollectorG1, core.PlanNone)
			p.run(t, core.CollectorNG2C, core.PlanManual)
			p.run(t, core.CollectorNG2C, core.PlanPOLM2)
			p.run(t, core.CollectorC4, core.PlanNone)
		}
	case "ablation-dump":
		t := ablationTarget()
		for _, v := range dumpVariants() {
			if v.variant == "" {
				p.profile(t)
				continue
			}
			v := v
			p.profileUnit(t.Key()+"|"+v.variant, func() error {
				_, err := s.dumpVariantProfile(t, v.variant, v.disableNoNeed, v.disableIncremental)
				return err
			})
		}
	case "ablation-conflict":
		t := targetByKey("Cassandra-RI")
		p.run(t, core.CollectorNG2C, core.PlanPOLM2)
		p.profileUnit(t.Key()+"|conflict-off", func() error {
			_, err := s.conflictOffProfile(t)
			return err
		})
		p.runUnit(runKey(t, core.CollectorNG2C, core.PlanPOLM2)+"|conflict-off", func() error {
			_, err := s.conflictOffRun(t)
			return err
		})
	case "ablation-hoist":
		t := targetByKey("GraphChi-PR")
		p.run(t, core.CollectorNG2C, core.PlanPOLM2)
		p.profileUnit(t.Key()+"|hoist-off", func() error {
			_, err := s.hoistOffProfile(t)
			return err
		})
		p.runUnit(runKey(t, core.CollectorNG2C, core.PlanPOLM2)+"|hoist-off", func() error {
			_, err := s.hoistOffRun(t)
			return err
		})
	case "ablation-estimator":
		t := ablationTarget()
		p.profile(t)
		p.profileUnit(t.Key()+"|estimator-p90", func() error {
			_, err := s.estimatorP90Profile(t)
			return err
		})
	case "ablation-cadence":
		t := ablationTarget()
		p.profile(t)
		for _, k := range []int{2, 4} {
			k := k
			p.profileUnit(fmt.Sprintf("%s|cadence-%d", t.Key(), k), func() error {
				_, err := s.cadenceProfile(t, k)
				return err
			})
		}
	default:
		return fmt.Errorf("bench: unknown experiment %q (want one of %v)", name, ExperimentNames())
	}
	return nil
}

// needsCompare reports whether experiment name consumes jmap comparison
// profiles. Resolved in a first pass so a target shared between table1 and
// fig3 is profiled once, with the tee.
func needsCompare(name string) bool { return name == "fig3" || name == "fig4" }

// executePool runs units on a pool of workers. The first unit error cancels
// the pool: in-flight units finish, queued units are dropped, and the error
// is returned. onDone is called serially for each completed unit.
func executePool(units []workUnit, workers int, onDone func(u workUnit, took time.Duration)) error {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
		doneMu  sync.Mutex
	)
	queue := make(chan workUnit)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range queue {
				if ctx.Err() != nil {
					continue // drain after cancellation
				}
				start := time.Now()
				if err := u.do(); err != nil {
					errOnce.Do(func() {
						firstEr = err
						cancel()
					})
					continue
				}
				if onDone != nil {
					doneMu.Lock()
					onDone(u, time.Since(start))
					doneMu.Unlock()
				}
			}
		}()
	}
	for _, u := range units {
		queue <- u
	}
	close(queue)
	wg.Wait()
	return firstEr
}

// RunExperiments executes the named experiments, writing their rendered
// output to w in request order, and returns a report with per-simulation
// timings. All simulations the experiments share are computed exactly once,
// on opts.Workers workers; rendering is serial against warm caches, so the
// bytes written to w depend only on the session Config and names — never on
// the worker count.
func (s *Session) RunExperiments(names []string, w io.Writer, opts ParallelOptions) (*Report, error) {
	start := time.Now()
	plan := newWorkPlan(s)
	for _, name := range names {
		if needsCompare(name) {
			for _, t := range Targets() {
				plan.compareNeeded[t.Key()] = true
			}
		}
	}
	for _, name := range names {
		if err := plan.require(name); err != nil {
			return nil, err
		}
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	progress := func(line string) {
		if opts.Progress != nil {
			opts.Progress(line)
		}
	}

	report := &Report{Workers: workers, Seed: s.cfg.Seed}
	total := len(plan.units)
	completed := 0
	for wave := waveProfile; wave <= waveRun; wave++ {
		var units []workUnit
		for _, u := range plan.units {
			if u.wave == wave {
				units = append(units, u)
			}
		}
		err := executePool(units, workers, func(u workUnit, took time.Duration) {
			completed++
			report.Units = append(report.Units, UnitReport{
				Key:    u.key,
				Wave:   map[int]string{waveProfile: "profile", waveRun: "run"}[u.wave],
				WallMS: took.Milliseconds(),
			})
			progress(fmt.Sprintf("[%d/%d] %s done in %v", completed, total, u.key, took.Round(time.Millisecond)))
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(report.Units, func(i, j int) bool {
		if report.Units[i].Wave != report.Units[j].Wave {
			return report.Units[i].Wave == "profile"
		}
		return report.Units[i].Key < report.Units[j].Key
	})

	for _, name := range names {
		renderStart := time.Now()
		var buf bytes.Buffer
		if err := s.RunExperiment(name, &buf); err != nil {
			return nil, err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return nil, fmt.Errorf("bench: writing %s output: %w", name, err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return nil, fmt.Errorf("bench: writing %s output: %w", name, err)
		}
		report.Experiments = append(report.Experiments, ExperimentReport{
			Name:   name,
			Output: buf.String(),
			WallMS: time.Since(renderStart).Milliseconds(),
		})
		progress(fmt.Sprintf("rendered %s", name))
	}
	report.TotalWallMS = time.Since(start).Milliseconds()
	return report, nil
}
