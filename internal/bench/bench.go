// Package bench is the evaluation harness of the POLM2 reproduction: one
// runner per table and figure of the paper's §5, plus the ablations listed
// in DESIGN.md §5.
//
// The harness caches profiling and production runs, so regenerating all
// figures performs each run once. All output is plain text tables; the
// paper's expected values are printed alongside the measured ones where the
// paper states them.
package bench

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/apps/cassandra"
	"polm2/internal/apps/graphchi"
	"polm2/internal/apps/lucene"
	"polm2/internal/core"
	"polm2/internal/faultio"
	"polm2/internal/trace"
)

// Target names one evaluated (application, workload) pair.
type Target struct {
	App      core.App
	Workload string
}

// Key returns the target's display key, e.g. "Cassandra-WI".
func (t Target) Key() string {
	if len(t.App.Workloads()) == 1 {
		return t.App.Name()
	}
	return t.App.Name() + "-" + t.Workload
}

// Targets returns the paper's six evaluation workloads in its order.
func Targets() []Target {
	cass, luc, gr := cassandra.New(), lucene.New(), graphchi.New()
	return []Target{
		{App: cass, Workload: cassandra.WorkloadWI},
		{App: cass, Workload: cassandra.WorkloadWR},
		{App: cass, Workload: cassandra.WorkloadRI},
		{App: luc, Workload: lucene.Workload},
		{App: gr, Workload: graphchi.WorkloadCC},
		{App: gr, Workload: graphchi.WorkloadPR},
	}
}

// Config parameterizes a benchmark session.
type Config struct {
	// Scale divides the paper's heap geometry. Default core.DefaultScale.
	Scale uint64
	// ProfileDuration overrides the profiling window (default
	// core.DefaultProfilingDuration).
	ProfileDuration time.Duration
	// RunDuration and Warmup override the production run window
	// (defaults: the paper's 30 minutes with 5 ignored).
	RunDuration time.Duration
	Warmup      time.Duration
	// Seed drives every run's randomness. Default 1.
	Seed int64
	// FaultSpec, when non-empty, injects the given I/O fault plan (see
	// faultio.ParseSpec) into every profiling run's artifact writes and
	// analyzes in salvage mode — the resilience benchmark. Empty runs
	// faultless and strict.
	FaultSpec string
	// Trace, when true, records a deterministic trace of every simulated
	// unit (profiling and production runs). Each unit traces into its own
	// buffer; WriteTrace concatenates the buffers sorted by unit key, so
	// the bytes are identical however many workers executed the units —
	// the same discipline the harness applies to its stdout.
	Trace bool
}

// Session caches profiles and runs across experiments. All cache methods
// are safe for concurrent use: the parallel runner (runner.go) prefetches
// cache entries from a worker pool, and identical requests coalesce into a
// single simulation via single-flight memoization.
//
// Every simulation seeds its RNG with a seed derived from (cfg.Seed, run
// identity) — see core.DeriveSeed — so results depend only on the
// configuration, never on worker count or scheduling order.
type Session struct {
	cfg      Config
	profiles memo[*core.ProfileResult]
	compare  memo[*core.ProfileResult] // with jmap comparison dumps
	runs     memo[*core.RunResult]

	// traceMu guards traces: each simulated unit's finished trace bytes,
	// keyed "kind:unit key". Units write into private buffers first, so
	// worker scheduling never interleaves records.
	traceMu sync.Mutex
	traces  map[string][]byte
}

// NewSession builds an empty session.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg, traces: make(map[string][]byte)}
}

// traceUnit starts the per-unit tracer for one simulation (nil when the
// session does not trace), returning it with a done function that files
// the unit's bytes for WriteTrace. The unit's first record names it, so a
// concatenated session trace stays self-describing.
func (s *Session) traceUnit(kind, key string) (*trace.Tracer, func()) {
	if !s.cfg.Trace {
		return nil, func() {}
	}
	buf := &bytes.Buffer{}
	tr := trace.New(trace.Options{Writer: buf})
	tr.Event("bench", "unit", trace.String("kind", kind), trace.String("key", key))
	return tr, func() {
		s.traceMu.Lock()
		s.traces[kind+":"+key] = append([]byte(nil), buf.Bytes()...)
		s.traceMu.Unlock()
	}
}

// WriteTrace writes every traced unit's records, units sorted by key —
// the deterministic serial order, independent of how many workers ran the
// session. Within a unit, records keep their emission order (and per-unit
// seq numbering restarts at zero).
func (s *Session) WriteTrace(w io.Writer) error {
	s.traceMu.Lock()
	keys := make([]string, 0, len(s.traces))
	for k := range s.traces {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bufs := make([][]byte, len(keys))
	for i, k := range keys {
		bufs[i] = s.traces[k]
	}
	s.traceMu.Unlock()
	for _, b := range bufs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// profileSeed derives the RNG seed of target t's profiling run. The
// comparison (jmap tee) profile shares the seed: taking extra comparison
// dumps never advances the simulated clock, so both produce the same
// CRIU-side results and may share one cache entry. Ablation profile
// variants share it too — each variant answers "same profiling run, one
// knob changed".
func (s *Session) profileSeed(t Target) int64 {
	return core.DeriveSeed(s.cfg.Seed, "profile", t.Key())
}

// runSeed derives the RNG seed of a production run. Collector and plan are
// part of the identity so the pause-time comparisons draw independent
// workload streams.
func (s *Session) runSeed(t Target, collectorName string, plan core.PlanKind) int64 {
	return core.DeriveSeed(s.cfg.Seed, "run", t.Key(), collectorName, string(plan))
}

// Profile returns the (cached) POLM2 profiling result for a target.
func (s *Session) Profile(t Target) (*core.ProfileResult, error) {
	return s.profileVariant(t, "", nil)
}

// profileVariant returns the (cached) profiling result for a target with
// the given options mutation applied. The empty variant is the default
// profile; named variants are the ablations' single-knob deviations from
// it. All variants of a target share the target's profile seed.
func (s *Session) profileVariant(t Target, variant string, mutate func(*core.ProfileOptions)) (*core.ProfileResult, error) {
	key := t.Key()
	if variant != "" {
		key += "|" + variant
	}
	return s.profiles.get(key, func() (*core.ProfileResult, error) {
		opts := core.ProfileOptions{
			Scale:    s.cfg.Scale,
			Duration: s.cfg.ProfileDuration,
			Seed:     s.profileSeed(t),
		}
		if s.cfg.FaultSpec != "" {
			plan, err := faultio.ParseSpec(s.cfg.FaultSpec)
			if err != nil {
				return nil, fmt.Errorf("bench: %w", err)
			}
			// Each profiling run gets its own injector: the crash
			// fault's syscall clock is per-run state.
			opts.Fault = faultio.New(plan)
		}
		if mutate != nil {
			mutate(&opts)
		}
		tr, done := s.traceUnit("profile", key)
		opts.Tracer = tr
		res, err := core.ProfileApp(t.App, t.Workload, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: profiling %s: %w", key, err)
		}
		done()
		return res, nil
	})
}

// ProfileWithJmap returns the (cached) profiling result that also took
// jmap-style comparison dumps (Figures 3 and 4). Comparison dumps do not
// advance the simulated clock, so the result doubles as the target's plain
// profile and back-fills that cache entry — one simulation serves both.
func (s *Session) ProfileWithJmap(t Target) (*core.ProfileResult, error) {
	key := t.Key()
	res, err := s.compare.get(key, func() (*core.ProfileResult, error) {
		res, err := core.ProfileApp(t.App, t.Workload, core.ProfileOptions{
			Scale:       s.cfg.Scale,
			Duration:    s.cfg.ProfileDuration,
			Seed:        s.profileSeed(t),
			CompareJmap: true,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: comparison profiling %s: %w", key, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	s.profiles.fill(key, res)
	return res, nil
}

// Run returns the (cached) production run of a target under the named
// collector and plan.
func (s *Session) Run(t Target, collectorName string, plan core.PlanKind) (*core.RunResult, error) {
	return s.runVariant(t, collectorName, plan, "", nil)
}

// runVariant returns the (cached) production run for a setup, optionally
// with a variant profile (the ablations') guiding the POLM2 plan. The empty
// variant runs with the target's default profile. All variants of a setup
// share the setup's run seed.
func (s *Session) runVariant(t Target, collectorName string, plan core.PlanKind, variant string, profileFor func() (*analyzer.Profile, error)) (*core.RunResult, error) {
	key := fmt.Sprintf("%s/%s/%s", t.Key(), collectorName, plan)
	if variant != "" {
		key += "|" + variant
	}
	return s.runs.get(key, func() (*core.RunResult, error) {
		var profile *analyzer.Profile
		switch plan {
		case core.PlanPOLM2:
			if profileFor != nil {
				var err error
				profile, err = profileFor()
				if err != nil {
					return nil, err
				}
			} else {
				pr, err := s.Profile(t)
				if err != nil {
					return nil, err
				}
				profile = pr.Profile
			}
		case core.PlanManual:
			var err error
			profile, err = t.App.ManualProfile(t.Workload)
			if err != nil {
				return nil, fmt.Errorf("bench: manual profile for %s: %w", t.Key(), err)
			}
		case core.PlanNone:
			// unmodified application
		default:
			return nil, fmt.Errorf("bench: unknown plan kind %q", plan)
		}
		tr, done := s.traceUnit("run", key)
		res, err := core.RunApp(t.App, t.Workload, collectorName, plan, profile, core.RunOptions{
			Scale:    s.cfg.Scale,
			Duration: s.cfg.RunDuration,
			Warmup:   s.cfg.Warmup,
			Seed:     s.runSeed(t, collectorName, plan),
			Tracer:   tr,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: running %s under %s/%s: %w", t.Key(), collectorName, plan, err)
		}
		done()
		return res, nil
	})
}

// setups are the three pause-time comparison configurations of Figure 5/6.
type setup struct {
	label     string
	collector string
	plan      core.PlanKind
}

func pauseSetups() []setup {
	return []setup{
		{label: "G1", collector: core.CollectorG1, plan: core.PlanNone},
		{label: "NG2C", collector: core.CollectorNG2C, plan: core.PlanManual},
		{label: "POLM2", collector: core.CollectorNG2C, plan: core.PlanPOLM2},
	}
}

// ExperimentNames lists the runnable experiments in paper order.
func ExperimentNames() []string {
	return []string{
		"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"ablation-dump", "ablation-conflict", "ablation-hoist",
		"ablation-estimator", "ablation-cadence",
	}
}

// RunExperiment dispatches one experiment by name.
func (s *Session) RunExperiment(name string, w io.Writer) error {
	switch name {
	case "table1":
		return s.Table1(w)
	case "fig3":
		return s.Figure3(w)
	case "fig4":
		return s.Figure4(w)
	case "fig5":
		return s.Figure5(w)
	case "fig6":
		return s.Figure6(w)
	case "fig7":
		return s.Figure7(w)
	case "fig8":
		return s.Figure8(w)
	case "fig9":
		return s.Figure9(w)
	case "ablation-dump":
		return s.AblationDump(w)
	case "ablation-conflict":
		return s.AblationConflict(w)
	case "ablation-hoist":
		return s.AblationHoist(w)
	case "ablation-estimator":
		return s.AblationEstimator(w)
	case "ablation-cadence":
		return s.AblationCadence(w)
	default:
		return fmt.Errorf("bench: unknown experiment %q (want one of %v)", name, ExperimentNames())
	}
}

// RunAll regenerates every table and figure serially. It is equivalent to
// RunExperiments over ExperimentNames with one worker.
func (s *Session) RunAll(w io.Writer) error {
	_, err := s.RunExperiments(ExperimentNames(), w, ParallelOptions{})
	return err
}

// fmtMS renders a duration as fractional milliseconds.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}
