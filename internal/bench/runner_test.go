package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"polm2/internal/core"
)

// tinyConfig is small enough to run the whole experiment matrix in a few
// seconds while still exercising every collector, plan and ablation path.
func tinyConfig() Config {
	return Config{
		Scale:           128,
		ProfileDuration: 2 * time.Minute,
		RunDuration:     2 * time.Minute,
		Warmup:          30 * time.Second,
		Seed:            7,
	}
}

// zeroTimings strips the wall-clock fields, leaving only the deterministic
// part of a report.
func zeroTimings(r *Report) {
	r.TotalWallMS = 0
	r.Workers = 0
	for i := range r.Experiments {
		r.Experiments[i].WallMS = 0
	}
	for i := range r.Units {
		r.Units[i].WallMS = 0
	}
}

func runMatrix(t *testing.T, workers int) (string, *Report) {
	t.Helper()
	s := NewSession(tinyConfig())
	var buf bytes.Buffer
	report, err := s.RunExperiments(ExperimentNames(), &buf, ParallelOptions{Workers: workers})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	zeroTimings(report)
	return buf.String(), report
}

// tinyMatrixSHA256 pins the rendered output of the tiny-config experiment
// matrix. It locks simulated behaviour across host-side refactors of the
// simulation core (the memory-layout work of DESIGN.md §8 must never change
// a byte of output); an intentional change to experiments, workloads or
// collector policy is expected to update it.
const tinyMatrixSHA256 = "1d3ebe5afd11c184953aa7b39954fac24fc475b5abc2164daa6427b183fd835c"

// TestRunExperimentsDeterministic is the golden determinism test: the full
// experiment matrix, same seed, run serially twice and once on eight
// workers, must render byte-identical output and produce identical JSON
// reports (timings aside) — and that output must match the pinned golden
// hash.
func TestRunExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	serial, serialReport := runMatrix(t, 1)
	again, _ := runMatrix(t, 1)
	parallel, parallelReport := runMatrix(t, 8)

	if serial != again {
		t.Fatal("two serial runs with the same seed rendered different output")
	}
	if serial != parallel {
		t.Fatal("workers=8 rendered different output than workers=1")
	}
	if got := fmt.Sprintf("%x", sha256.Sum256([]byte(serial))); got != tinyMatrixSHA256 {
		t.Fatalf("matrix output hash = %s, want pinned %s — simulated behaviour changed", got, tinyMatrixSHA256)
	}
	sj, err := json.Marshal(serialReport)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallelReport)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("reports differ after zeroing timings:\n%s\nvs\n%s", sj, pj)
	}
	if len(serialReport.Experiments) != len(ExperimentNames()) {
		t.Fatalf("report covers %d experiments, want %d", len(serialReport.Experiments), len(ExperimentNames()))
	}
	if len(serialReport.Units) == 0 {
		t.Fatal("report lists no simulation units")
	}
}

// TestSessionStressAllSetupsInFlight fetches every (target, collector,
// plan) setup plus every profile flavor from one session concurrently —
// far beyond what the wave scheduler would admit at once — to give the
// race detector something to chew on and to check that single-flight
// caching returns one canonical result per key.
func TestSessionStressAllSetupsInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	s := NewSession(tinyConfig())
	type fetch struct {
		key string
		do  func() (any, error)
	}
	var fetches []fetch
	for _, t2 := range Targets() {
		t2 := t2
		fetches = append(fetches,
			fetch{"profile:" + t2.Key(), func() (any, error) { return s.Profile(t2) }},
			fetch{"compare:" + t2.Key(), func() (any, error) { return s.ProfileWithJmap(t2) }},
		)
		setups := []struct {
			collector string
			plan      core.PlanKind
		}{
			{core.CollectorG1, core.PlanNone},
			{core.CollectorNG2C, core.PlanManual},
			{core.CollectorNG2C, core.PlanPOLM2},
			{core.CollectorC4, core.PlanNone},
		}
		for _, su := range setups {
			su := su
			fetches = append(fetches, fetch{
				fmt.Sprintf("run:%s/%s/%s", t2.Key(), su.collector, su.plan),
				func() (any, error) { return s.Run(t2, su.collector, su.plan) },
			})
		}
	}

	// Fetch everything twice, concurrently, so every cache key sees
	// contention both on first compute and on hit.
	results := make([][2]any, len(fetches))
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(fetches))
	for round := 0; round < 2; round++ {
		for i, f := range fetches {
			wg.Add(1)
			go func(round, i int, f fetch) {
				defer wg.Done()
				v, err := f.do()
				if err != nil {
					errs <- fmt.Errorf("%s: %w", f.key, err)
					return
				}
				results[i][round] = v
			}(round, i, f)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, f := range fetches {
		if results[i][0] == nil || results[i][0] != results[i][1] {
			t.Fatalf("%s: concurrent fetches returned distinct results", f.key)
		}
	}
}

// TestExecutePoolFirstErrorCancels checks the pool's failure contract: the
// first unit error is returned, and units still queued behind the failure
// are dropped rather than executed.
func TestExecutePoolFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran []string
	units := []workUnit{
		{key: "a", wave: waveProfile, do: func() error { ran = append(ran, "a"); return nil }},
		{key: "b", wave: waveProfile, do: func() error { ran = append(ran, "b"); return boom }},
		{key: "c", wave: waveProfile, do: func() error { ran = append(ran, "c"); return nil }},
		{key: "d", wave: waveProfile, do: func() error { ran = append(ran, "d"); return nil }},
	}
	err := executePool(units, 1, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(ran) != 2 || ran[0] != "a" || ran[1] != "b" {
		t.Fatalf("ran = %v, want [a b]", ran)
	}
}

// TestExecutePoolConcurrentError checks the same contract under real
// concurrency: with many workers and an early failure, the pool returns
// the first error and terminates.
func TestExecutePoolConcurrentError(t *testing.T) {
	boom := errors.New("boom")
	var mu sync.Mutex
	completed := 0
	var units []workUnit
	for i := 0; i < 64; i++ {
		i := i
		units = append(units, workUnit{
			key:  fmt.Sprintf("u%d", i),
			wave: waveRun,
			do: func() error {
				if i == 3 {
					return boom
				}
				mu.Lock()
				completed++
				mu.Unlock()
				return nil
			},
		})
	}
	err := executePool(units, 8, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if completed >= 64 {
		t.Fatal("pool ran every unit despite a failure")
	}
}

// TestExecutePoolReportsEveryUnit checks onDone is called exactly once per
// unit on success, serialized.
func TestExecutePoolReportsEveryUnit(t *testing.T) {
	var units []workUnit
	for i := 0; i < 32; i++ {
		units = append(units, workUnit{key: fmt.Sprintf("u%d", i), wave: waveProfile, do: func() error { return nil }})
	}
	seen := make(map[string]int)
	err := executePool(units, 4, func(u workUnit, _ time.Duration) { seen[u.key]++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(units) {
		t.Fatalf("onDone saw %d units, want %d", len(seen), len(units))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("unit %s reported %d times", k, n)
		}
	}
}

// TestRunExperimentsUnknownName rejects unknown experiments before any
// simulation starts.
func TestRunExperimentsUnknownName(t *testing.T) {
	s := NewSession(tinyConfig())
	if _, err := s.RunExperiments([]string{"fig99"}, &bytes.Buffer{}, ParallelOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
