package bench

import (
	"fmt"
	"io"
	"time"

	"polm2/internal/core"
	"polm2/internal/metrics"
	"polm2/internal/snapshot"
)

// paperTable1 holds the paper's Table 1 values as "POLM2/NG2C" strings.
var paperTable1 = map[string][3]string{
	"Cassandra-WI": {"11/11", "4/N", "2/2"},
	"Cassandra-WR": {"11/11", "4/N", "2/2"},
	"Cassandra-RI": {"10/11", "4/N", "3/2"},
	"Lucene":       {"2/8", "2/2", "2/0"},
	"GraphChi-CC":  {"9/9", "2/2", "1/0"},
	"GraphChi-PR":  {"9/9", "2/2", "1/0"},
}

// Table1 reproduces the paper's Table 1: application profiling metrics for
// POLM2 against the expert's manual NG2C annotations.
func (s *Session) Table1(w io.Writer) error {
	fmt.Fprintln(w, "=== Table 1: Application Profiling Metrics (POLM2/NG2C, paper value in parens) ===")
	fmt.Fprintf(w, "%-14s %-28s %-24s %-24s\n",
		"Workload", "#Instrumented Alloc Sites", "#Used Generations", "#Conflicts Encountered")
	for _, t := range Targets() {
		res, err := s.Profile(t)
		if err != nil {
			return err
		}
		manual, err := t.App.ManualProfile(t.Workload)
		if err != nil {
			return err
		}
		paper := paperTable1[t.Key()]
		fmt.Fprintf(w, "%-14s %-28s %-24s %-24s\n",
			t.Key(),
			fmt.Sprintf("%d/%d (%s)", res.Profile.InstrumentedSites(), manual.InstrumentedSites(), paper[0]),
			fmt.Sprintf("%d/%d (%s)", res.Profile.UsedGenerations(), manual.UsedGenerations(), paper[1]),
			fmt.Sprintf("%d/%d (%s)", res.Profile.Conflicts, manual.Conflicts, paper[2]))
	}
	return nil
}

// snapshotPairs aligns the first n CRIU/jmap snapshot pairs of a comparison
// profiling run.
func snapshotPairs(res *core.ProfileResult, n int) [][2]*snapshot.Snapshot {
	var out [][2]*snapshot.Snapshot
	for i := 0; i < len(res.Snapshots) && i < len(res.JmapSnapshots) && i < n; i++ {
		out = append(out, [2]*snapshot.Snapshot{res.Snapshots[i], res.JmapSnapshots[i]})
	}
	return out
}

// figure34 prints one of the snapshot-comparison figures.
func (s *Session) figure34(w io.Writer, title, unit string, metric func(*snapshot.Snapshot) float64, paperNote string) error {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, paperNote)
	fmt.Fprintf(w, "%-14s %-10s %-14s %-14s %-10s\n", "Workload", "Snapshots", "Dumper(avg)", "jmap(avg)", "Ratio")
	for _, t := range Targets() {
		res, err := s.ProfileWithJmap(t)
		if err != nil {
			return err
		}
		pairs := snapshotPairs(res, 20)
		if len(pairs) == 0 {
			fmt.Fprintf(w, "%-14s no snapshots\n", t.Key())
			continue
		}
		var criuSum, jmapSum, ratioSum float64
		for _, pair := range pairs {
			c, j := metric(pair[0]), metric(pair[1])
			criuSum += c
			jmapSum += j
			if j > 0 {
				ratioSum += c / j
			}
		}
		n := float64(len(pairs))
		fmt.Fprintf(w, "%-14s %-10d %-14.2f %-14.2f %-10.3f\n",
			t.Key(), len(pairs), criuSum/n, jmapSum/n, ratioSum/n)
	}
	fmt.Fprintf(w, "(values in %s; ratio = Dumper/jmap averaged over the first 20 snapshots)\n", unit)
	return nil
}

// Figure3 reproduces the snapshot-time comparison: Dumper vs jmap,
// normalized to jmap, first 20 snapshots of each workload.
func (s *Session) Figure3(w io.Writer) error {
	return s.figure34(w,
		"=== Figure 3: Memory Snapshot Time, Dumper normalized to jmap ===",
		"ms",
		func(sn *snapshot.Snapshot) float64 { return float64(sn.Duration) / float64(time.Millisecond) },
		"(paper: Dumper reduces snapshot time by more than 90% on all workloads)")
}

// Figure4 reproduces the snapshot-size comparison.
func (s *Session) Figure4(w io.Writer) error {
	return s.figure34(w,
		"=== Figure 4: Memory Snapshot Size, Dumper normalized to jmap ===",
		"MB",
		func(sn *snapshot.Snapshot) float64 { return float64(sn.SizeBytes) / (1 << 20) },
		"(paper: Dumper reduces snapshot size by approximately 60% on all workloads)")
}

// paperWorstReduction holds the paper's reported worst-pause reductions of
// POLM2 vs G1 (§5.4.1).
var paperWorstReduction = map[string]int{
	"Cassandra-WI": 55, "Cassandra-WR": 67, "Cassandra-RI": 78,
	"Lucene": 58, "GraphChi-CC": 78, "GraphChi-PR": 80,
}

// Figure5 reproduces the pause-time percentile figure: percentiles 50 to
// 99.999 plus the worst observable pause, per workload, for G1, manual NG2C
// and POLM2.
func (s *Session) Figure5(w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 5: Pause Time Percentiles (ms) ===")
	for _, t := range Targets() {
		fmt.Fprintf(w, "--- %s ---\n", t.Key())
		fmt.Fprintf(w, "%-8s", "")
		for _, p := range metrics.PaperPercentiles {
			fmt.Fprintf(w, "%10v", p)
		}
		fmt.Fprintf(w, "%10s\n", "worst")
		var g1Worst, polm2Worst time.Duration
		for _, su := range pauseSetups() {
			res, err := s.Run(t, su.collector, su.plan)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-8s", su.label)
			for _, p := range metrics.PaperPercentiles {
				fmt.Fprintf(w, "%10s", fmtMS(res.WarmPauses.Percentile(p)))
			}
			fmt.Fprintf(w, "%10s\n", fmtMS(res.WarmPauses.Max()))
			switch su.label {
			case "G1":
				g1Worst = res.WarmPauses.Max()
			case "POLM2":
				polm2Worst = res.WarmPauses.Max()
			}
		}
		if g1Worst > 0 {
			reduction := 100 * (1 - float64(polm2Worst)/float64(g1Worst))
			fmt.Fprintf(w, "worst-pause reduction POLM2 vs G1: %.0f%% (paper: %d%%)\n",
				reduction, paperWorstReduction[t.Key()])
		}
	}
	return nil
}

// figure6Edges are the pause-duration intervals of Figure 6.
var figure6Edges = []time.Duration{
	16 * time.Millisecond,
	32 * time.Millisecond,
	64 * time.Millisecond,
	128 * time.Millisecond,
	256 * time.Millisecond,
	512 * time.Millisecond,
	1024 * time.Millisecond,
	2048 * time.Millisecond,
}

// Figure6 reproduces the pause-count-per-duration-interval figure.
func (s *Session) Figure6(w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 6: Number of Application Pauses per Duration Interval ===")
	fmt.Fprintln(w, "(paper: POLM2 and NG2C shift pause counts toward shorter intervals on every workload)")
	for _, t := range Targets() {
		fmt.Fprintf(w, "--- %s ---\n", t.Key())
		header, err := metrics.NewHistogram(figure6Edges)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s", "")
		for i := 0; i < header.NumBuckets(); i++ {
			fmt.Fprintf(w, "%16s", header.BucketLabel(i))
		}
		fmt.Fprintln(w)
		for _, su := range pauseSetups() {
			res, err := s.Run(t, su.collector, su.plan)
			if err != nil {
				return err
			}
			h, err := metrics.NewHistogram(figure6Edges)
			if err != nil {
				return err
			}
			for _, d := range res.WarmPauses.Values() {
				h.Add(d)
			}
			fmt.Fprintf(w, "%-8s", su.label)
			for _, c := range h.Counts() {
				fmt.Fprintf(w, "%16d", c)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// paperFig7 holds the paper's throughput-vs-G1 percentages for POLM2.
var paperFig7 = map[string]string{
	"Cassandra-WI": "+1%", "Cassandra-WR": "+11%", "Cassandra-RI": "+18%",
	"Lucene": "-1%", "GraphChi-CC": "-4%", "GraphChi-PR": "-5%",
}

// Figure7 reproduces the throughput figure, normalized to G1. C4 is added
// for the Cassandra workloads, as in the paper.
func (s *Session) Figure7(w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 7: Application Throughput normalized to G1 ===")
	fmt.Fprintf(w, "%-14s %-10s %-10s %-10s %-10s %-18s\n",
		"Workload", "G1", "NG2C", "POLM2", "C4", "paper POLM2 vs G1")
	for _, t := range Targets() {
		g1, err := s.Run(t, core.CollectorG1, core.PlanNone)
		if err != nil {
			return err
		}
		manual, err := s.Run(t, core.CollectorNG2C, core.PlanManual)
		if err != nil {
			return err
		}
		polm2, err := s.Run(t, core.CollectorNG2C, core.PlanPOLM2)
		if err != nil {
			return err
		}
		c4Cell := "-"
		if t.App.Name() == "Cassandra" {
			c4, err := s.Run(t, core.CollectorC4, core.PlanNone)
			if err != nil {
				return err
			}
			c4Cell = fmt.Sprintf("%.3f", float64(c4.WarmOps)/float64(g1.WarmOps))
		}
		fmt.Fprintf(w, "%-14s %-10s %-10.3f %-10.3f %-10s %-18s\n",
			t.Key(), "1.000",
			float64(manual.WarmOps)/float64(g1.WarmOps),
			float64(polm2.WarmOps)/float64(g1.WarmOps),
			c4Cell, paperFig7[t.Key()])
	}
	return nil
}

// Figure8 reproduces the Cassandra throughput time series: a 10-minute
// sample of transactions per second for each collector. The harness prints
// 30-second aggregates; one simulated operation stands for core.OpScale
// real transactions, so the reported rate is comparable to the paper's.
func (s *Session) Figure8(w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 8: Cassandra Throughput (transactions/second), 10-minute sample ===")
	scale := s.cfg.Scale
	if scale == 0 {
		scale = core.DefaultScale
	}
	for _, t := range Targets() {
		if t.App.Name() != "Cassandra" {
			continue
		}
		fmt.Fprintf(w, "--- %s (30s buckets, tx/s) ---\n", t.Key())
		type row struct {
			label string
			vals  []int64
		}
		var rows []row
		window := 10 * time.Minute
		const bucket = 30 * time.Second
		for _, su := range []setup{
			{label: "G1", collector: core.CollectorG1, plan: core.PlanNone},
			{label: "NG2C", collector: core.CollectorNG2C, plan: core.PlanManual},
			{label: "POLM2", collector: core.CollectorNG2C, plan: core.PlanPOLM2},
			{label: "C4", collector: core.CollectorC4, plan: core.PlanNone},
		} {
			res, err := s.Run(t, su.collector, su.plan)
			if err != nil {
				return err
			}
			from := res.Warmup
			to := from + window
			if to > res.SimDuration {
				to = res.SimDuration
			}
			perSec := res.Ops.Slice(from, to)
			var vals []int64
			secsPerBucket := int(bucket / time.Second)
			for i := 0; i+secsPerBucket <= len(perSec); i += secsPerBucket {
				var sum int64
				for j := i; j < i+secsPerBucket; j++ {
					sum += perSec[j]
				}
				vals = append(vals, sum*int64(scale)/int64(secsPerBucket))
			}
			rows = append(rows, row{label: su.label, vals: vals})
		}
		fmt.Fprintf(w, "%-8s", "t(s)")
		if len(rows) > 0 {
			for i := range rows[0].vals {
				fmt.Fprintf(w, "%7d", (i+1)*30)
			}
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintf(w, "%-8s", r.label)
			for _, v := range r.vals {
				fmt.Fprintf(w, "%7d", v)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "(paper: G1, NG2C and POLM2 sustain similar rates; C4 is the slowest)")
	return nil
}

// Figure9 reproduces the max-memory figure, normalized to G1. C4 is shown
// for Cassandra with its pre-reserved footprint, as discussed in the paper.
func (s *Session) Figure9(w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 9: Application Max Memory Usage normalized to G1 ===")
	fmt.Fprintf(w, "%-14s %-10s %-10s %-10s %-14s\n", "Workload", "G1", "NG2C", "POLM2", "C4(reserved)")
	for _, t := range Targets() {
		g1, err := s.Run(t, core.CollectorG1, core.PlanNone)
		if err != nil {
			return err
		}
		manual, err := s.Run(t, core.CollectorNG2C, core.PlanManual)
		if err != nil {
			return err
		}
		polm2, err := s.Run(t, core.CollectorNG2C, core.PlanPOLM2)
		if err != nil {
			return err
		}
		c4Cell := "-"
		if t.App.Name() == "Cassandra" {
			c4, err := s.Run(t, core.CollectorC4, core.PlanNone)
			if err != nil {
				return err
			}
			c4Cell = fmt.Sprintf("%.2f", float64(c4.MaxMemoryBytes)/float64(g1.MaxMemoryBytes))
		}
		fmt.Fprintf(w, "%-14s %-10s %-10.3f %-10.3f %-14s\n",
			t.Key(), "1.000",
			float64(manual.MaxMemoryBytes)/float64(g1.MaxMemoryBytes),
			float64(polm2.MaxMemoryBytes)/float64(g1.MaxMemoryBytes),
			c4Cell)
	}
	fmt.Fprintln(w, "(paper: G1, NG2C and POLM2 use similar memory; C4 pre-reserves all available memory)")
	return nil
}
