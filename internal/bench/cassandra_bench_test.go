package bench

import (
	"testing"
	"time"

	"polm2/internal/apps/cassandra"
	"polm2/internal/core"
)

// BenchmarkCassandraWIProduction runs a short Cassandra write-intensive
// production simulation under G1 per iteration — the end-to-end workload
// whose host-GC pressure bounds the quick suite. allocs/op divided by
// GCCycles approximates the Go allocations one simulated GC cycle costs.
func BenchmarkCassandraWIProduction(b *testing.B) {
	app := cassandra.New()
	opts := core.RunOptions{
		Scale:    128,
		Duration: time.Minute,
		Warmup:   10 * time.Second,
		Seed:     7,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := core.RunApp(app, cassandra.WorkloadWI, core.CollectorG1, core.PlanNone, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.GCCycles
	}
	b.ReportMetric(float64(cycles), "gc-cycles/op")
}
