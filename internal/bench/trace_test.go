package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"polm2/internal/trace"
)

// runTraced runs one experiment with tracing on and returns the collected
// trace bytes.
func runTraced(t *testing.T, workers int) string {
	t.Helper()
	cfg := tinyConfig()
	cfg.Trace = true
	s := NewSession(cfg)
	if _, err := s.RunExperiments([]string{"fig5"}, io.Discard, ParallelOptions{Workers: workers}); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatalf("workers=%d: writing trace: %v", workers, err)
	}
	return buf.String()
}

// TestTraceDeterministic pins the acceptance contract for bench tracing:
// the concatenated per-unit trace is byte-identical across repeated serial
// runs and across worker counts. Per-unit tracers plus a sorted merge make
// the schedule invisible in the output.
func TestTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("traced experiment runs in -short mode")
	}
	serial := runTraced(t, 1)
	again := runTraced(t, 1)
	parallel := runTraced(t, 8)

	if serial == "" {
		t.Fatal("traced run produced no trace output")
	}
	if serial != again {
		t.Fatal("two serial traced runs with the same seed differ")
	}
	if serial != parallel {
		t.Fatal("workers=8 trace differs from workers=1")
	}

	recs, err := trace.Decode(strings.NewReader(serial))
	if err != nil {
		t.Fatalf("bench trace does not decode: %v", err)
	}
	var units, gcSpans int
	for _, r := range recs {
		if r.Comp == "bench" && r.Name == "unit" {
			units++
		}
		if r.Comp == "gc" && r.Kind == trace.KindSpan {
			gcSpans++
		}
	}
	if units == 0 {
		t.Fatal("trace carries no bench/unit markers")
	}
	if gcSpans == 0 {
		t.Fatal("trace carries no gc spans from the simulated runs")
	}
}

// TestTraceOffByDefault checks that an untraced session writes nothing:
// tracing must stay pay-for-what-you-use.
func TestTraceOffByDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	s := NewSession(tinyConfig())
	if _, err := s.RunExperiments([]string{"fig5"}, io.Discard, ParallelOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("untraced session wrote %d trace bytes", buf.Len())
	}
}
