package bench

import "sync"

// memo is a concurrency-safe, single-flight memoization table. The first
// caller of a key runs compute while later callers of the same key block on
// the entry's once and then share the result; different keys never block
// each other, and compute may itself call into the same memo under a
// different key (the map mutex is not held while compute runs).
type memo[V any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

func (c *memo[V]) entry(key string) *memoEntry[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*memoEntry[V])
	}
	e := c.m[key]
	if e == nil {
		e = &memoEntry[V]{}
		c.m[key] = e
	}
	return e
}

// get returns the cached value for key, computing it via compute on first
// use. Errors are cached too: a failed computation is not retried, so every
// caller of the key observes the same outcome.
func (c *memo[V]) get(key string, compute func() (V, error)) (V, error) {
	e := c.entry(key)
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// fill stores val under key if no computation for the key has started yet.
// The session uses it to share one result between two caches whose entries
// are known to be equivalent (a comparison profile also serves as the plain
// profile of the same target).
func (c *memo[V]) fill(key string, val V) {
	e := c.entry(key)
	e.once.Do(func() { e.val = val })
}
