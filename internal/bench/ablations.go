package bench

import (
	"fmt"
	"io"

	"polm2/internal/analyzer"
	"polm2/internal/core"
)

// ablationTarget is the workload used for the single-workload ablations:
// Cassandra-WI exercises every mechanism (conflicts, hoisting, dumps).
func ablationTarget() Target {
	for _, t := range Targets() {
		if t.Key() == "Cassandra-WI" {
			return t
		}
	}
	panic("bench: Cassandra-WI missing from targets")
}

func targetByKey(key string) Target {
	for _, t := range Targets() {
		if t.Key() == key {
			return t
		}
	}
	panic("bench: " + key + " missing from targets")
}

// Each ablation's baseline row is the paper configuration, which is
// identical to the main matrix's default profile or run of the same target;
// those rows fetch through Profile/Run and share the main-matrix cache
// entry. Only the deviating variants cost extra simulations.

// dumpVariants enumerates the Dumper-optimization ablation rows. The empty
// variant is the paper configuration.
func dumpVariants() []struct {
	label, variant     string
	disableNoNeed      bool
	disableIncremental bool
} {
	return []struct {
		label, variant     string
		disableNoNeed      bool
		disableIncremental bool
	}{
		{label: "both optimizations (paper)"},
		{label: "no no-need elision", variant: "dump-noneed-off", disableNoNeed: true},
		{label: "no incrementality", variant: "dump-incremental-off", disableIncremental: true},
		{label: "neither optimization", variant: "dump-neither", disableNoNeed: true, disableIncremental: true},
	}
}

func (s *Session) dumpVariantProfile(t Target, variant string, disableNoNeed, disableIncremental bool) (*core.ProfileResult, error) {
	return s.profileVariant(t, variant, func(o *core.ProfileOptions) {
		o.DumpDisableNoNeed = disableNoNeed
		o.DumpDisableIncremental = disableIncremental
	})
}

// AblationDump toggles the Dumper's two snapshot optimizations (§3.2)
// independently and reports time/size against the fully optimized dumper.
func (s *Session) AblationDump(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: Dumper optimizations (Cassandra-WI, averages over first 20 snapshots) ===")
	t := ablationTarget()
	fmt.Fprintf(w, "%-28s %-14s %-14s\n", "Variant", "avg time(ms)", "avg size(MB)")
	for _, v := range dumpVariants() {
		res, err := s.dumpVariantProfile(t, v.variant, v.disableNoNeed, v.disableIncremental)
		if err != nil {
			return fmt.Errorf("bench: dump ablation %q: %w", v.label, err)
		}
		snaps := res.Snapshots
		if len(snaps) > 20 {
			snaps = snaps[:20]
		}
		var timeMS, sizeMB float64
		for _, sn := range snaps {
			timeMS += float64(sn.Duration.Milliseconds())
			sizeMB += float64(sn.SizeBytes) / (1 << 20)
		}
		n := float64(len(snaps))
		if n == 0 {
			n = 1
		}
		fmt.Fprintf(w, "%-28s %-14.1f %-14.2f\n", v.label, timeMS/n, sizeMB/n)
	}
	return nil
}

// conflictOffProfile is the Cassandra-RI profile with STTree conflict
// resolution disabled.
func (s *Session) conflictOffProfile(t Target) (*core.ProfileResult, error) {
	return s.profileVariant(t, "conflict-off", func(o *core.ProfileOptions) {
		o.Analyzer = analyzer.Options{DisableConflictResolution: true}
	})
}

func (s *Session) conflictOffRun(t Target) (*core.RunResult, error) {
	return s.runVariant(t, core.CollectorNG2C, core.PlanPOLM2, "conflict-off", func() (*analyzer.Profile, error) {
		pr, err := s.conflictOffProfile(t)
		if err != nil {
			return nil, err
		}
		return pr.Profile, nil
	})
}

// AblationConflict disables STTree conflict resolution (Algorithm 1) and
// compares the resulting pause times: without it, conflicted sites collapse
// to one generation and transient objects pollute the old generations.
func (s *Session) AblationConflict(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: STTree conflict resolution (Cassandra-RI) ===")
	fmt.Fprintln(w, "(mispretenured transients shift cost from pauses to memory and mutator overhead)")
	t := targetByKey("Cassandra-RI")
	fmt.Fprintf(w, "%-28s %-10s %-12s %-12s %-12s %-10s %-10s\n",
		"Variant", "pauses", "p50(ms)", "p99(ms)", "worst(ms)", "mem(MB)", "ops")
	for _, row := range []struct {
		label string
		run   func() (*core.RunResult, error)
	}{
		{label: "with Algorithm 1 (paper)", run: func() (*core.RunResult, error) {
			return s.Run(t, core.CollectorNG2C, core.PlanPOLM2)
		}},
		{label: "conflict resolution off", run: func() (*core.RunResult, error) {
			return s.conflictOffRun(t)
		}},
	} {
		res, err := row.run()
		if err != nil {
			return fmt.Errorf("bench: conflict ablation: %w", err)
		}
		fmt.Fprintf(w, "%-28s %-10d %-12s %-12s %-12s %-10d %-10d\n",
			row.label, res.WarmPauses.Len(),
			fmtMS(res.WarmPauses.Percentile(50)),
			fmtMS(res.WarmPauses.Percentile(99)),
			fmtMS(res.WarmPauses.Max()),
			res.MaxMemoryBytes>>20, res.WarmOps)
	}
	return nil
}

// hoistOffProfile is the GraphChi-PR profile with §4.4 generation hoisting
// disabled.
func (s *Session) hoistOffProfile(t Target) (*core.ProfileResult, error) {
	return s.profileVariant(t, "hoist-off", func(o *core.ProfileOptions) {
		o.Analyzer = analyzer.Options{DisableHoisting: true}
	})
}

func (s *Session) hoistOffRun(t Target) (*core.RunResult, error) {
	return s.runVariant(t, core.CollectorNG2C, core.PlanPOLM2, "hoist-off", func() (*analyzer.Profile, error) {
		pr, err := s.hoistOffProfile(t)
		if err != nil {
			return nil, err
		}
		return pr.Profile, nil
	})
}

// AblationHoist disables the §4.4 generation-hoisting optimization and
// reports the dynamic setGeneration call counts with and without it.
// GraphChi is the interesting case: a single hoisted switch at the
// batch-load call site covers thousands of chunk allocations.
func (s *Session) AblationHoist(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: generation hoisting (§4.4, GraphChi-PR) ===")
	t := targetByKey("GraphChi-PR")
	fmt.Fprintf(w, "%-24s %-16s %-16s %-12s\n", "Variant", "gen switches", "switch/op", "ops")
	for _, row := range []struct {
		label string
		run   func() (*core.RunResult, error)
	}{
		{label: "hoisting on (paper)", run: func() (*core.RunResult, error) {
			return s.Run(t, core.CollectorNG2C, core.PlanPOLM2)
		}},
		{label: "hoisting off", run: func() (*core.RunResult, error) {
			return s.hoistOffRun(t)
		}},
	} {
		res, err := row.run()
		if err != nil {
			return fmt.Errorf("bench: hoist ablation: %w", err)
		}
		perOp := 0.0
		if res.WarmOps > 0 {
			perOp = float64(res.GenSwitches) / float64(res.WarmOps)
		}
		fmt.Fprintf(w, "%-24s %-16d %-16.2f %-12d\n", row.label, res.GenSwitches, perOp, res.WarmOps)
	}
	return nil
}

// estimatorP90Profile is the Cassandra-WI profile analyzed with the
// 90th-percentile survival estimator instead of the paper's bucket mode.
func (s *Session) estimatorP90Profile(t Target) (*core.ProfileResult, error) {
	return s.profileVariant(t, "estimator-p90", func(o *core.ProfileOptions) {
		o.Analyzer = analyzer.Options{Estimator: analyzer.EstimatorP90}
	})
}

// AblationEstimator compares the paper's mode estimator against a
// 90th-percentile survival estimator. The mode row is the default analyzer
// configuration and shares the target's main profile.
func (s *Session) AblationEstimator(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: target-generation estimator (Cassandra-WI) ===")
	t := ablationTarget()
	fmt.Fprintf(w, "%-24s %-14s %-12s %-12s\n", "Variant", "instrumented", "gens", "conflicts")
	for _, row := range []struct {
		label   string
		profile func() (*core.ProfileResult, error)
	}{
		{label: "bucket mode (paper)", profile: func() (*core.ProfileResult, error) { return s.Profile(t) }},
		{label: "90th percentile", profile: func() (*core.ProfileResult, error) { return s.estimatorP90Profile(t) }},
	} {
		prof, err := row.profile()
		if err != nil {
			return fmt.Errorf("bench: estimator ablation: %w", err)
		}
		fmt.Fprintf(w, "%-24s %-14d %-12d %-12d\n",
			row.label, prof.Profile.InstrumentedSites(),
			prof.Profile.UsedGenerations(), prof.Profile.Conflicts)
	}
	return nil
}

// cadenceProfile is the Cassandra-WI profile snapshotted every k-th GC
// cycle. k=1 is the default cadence and shares the target's main profile.
func (s *Session) cadenceProfile(t Target, k int) (*core.ProfileResult, error) {
	if k == 1 {
		return s.Profile(t)
	}
	return s.profileVariant(t, fmt.Sprintf("cadence-%d", k), func(o *core.ProfileOptions) {
		o.SnapshotEvery = k
	})
}

// AblationCadence varies the snapshot cadence (every k-th GC cycle) and
// reports the profiling cost against the resulting profile.
func (s *Session) AblationCadence(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: snapshot cadence (Cassandra-WI) ===")
	t := ablationTarget()
	fmt.Fprintf(w, "%-10s %-10s %-14s %-14s %-10s\n", "every k", "snapshots", "dump time(ms)", "instrumented", "gens")
	for _, k := range []int{1, 2, 4} {
		prof, err := s.cadenceProfile(t, k)
		if err != nil {
			return fmt.Errorf("bench: cadence ablation: %w", err)
		}
		var dumpMS float64
		for _, sn := range prof.Snapshots {
			dumpMS += float64(sn.Duration.Milliseconds())
		}
		fmt.Fprintf(w, "%-10d %-10d %-14.0f %-14d %-10d\n",
			k, len(prof.Snapshots), dumpMS,
			prof.Profile.InstrumentedSites(), prof.Profile.UsedGenerations())
	}
	fmt.Fprintln(w, "(sparser snapshots cut profiling cost but coarsen lifetime resolution)")
	return nil
}
