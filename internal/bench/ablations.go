package bench

import (
	"fmt"
	"io"

	"polm2/internal/analyzer"
	"polm2/internal/core"
)

// ablationTarget is the workload used for the single-workload ablations:
// Cassandra-WI exercises every mechanism (conflicts, hoisting, dumps).
func ablationTarget() Target {
	for _, t := range Targets() {
		if t.Key() == "Cassandra-WI" {
			return t
		}
	}
	panic("bench: Cassandra-WI missing from targets")
}

// AblationDump toggles the Dumper's two snapshot optimizations (§3.2)
// independently and reports time/size against the fully optimized dumper.
func (s *Session) AblationDump(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: Dumper optimizations (Cassandra-WI, averages over first 20 snapshots) ===")
	t := ablationTarget()
	variants := []struct {
		label              string
		disableNoNeed      bool
		disableIncremental bool
	}{
		{label: "both optimizations (paper)", disableNoNeed: false, disableIncremental: false},
		{label: "no no-need elision", disableNoNeed: true, disableIncremental: false},
		{label: "no incrementality", disableNoNeed: false, disableIncremental: true},
		{label: "neither optimization", disableNoNeed: true, disableIncremental: true},
	}
	fmt.Fprintf(w, "%-28s %-14s %-14s\n", "Variant", "avg time(ms)", "avg size(MB)")
	for _, v := range variants {
		res, err := core.ProfileApp(t.App, t.Workload, core.ProfileOptions{
			Scale:                  s.cfg.Scale,
			Duration:               s.cfg.ProfileDuration,
			Seed:                   s.cfg.Seed,
			DumpDisableNoNeed:      v.disableNoNeed,
			DumpDisableIncremental: v.disableIncremental,
		})
		if err != nil {
			return fmt.Errorf("bench: dump ablation %q: %w", v.label, err)
		}
		snaps := res.Snapshots
		if len(snaps) > 20 {
			snaps = snaps[:20]
		}
		var timeMS, sizeMB float64
		for _, sn := range snaps {
			timeMS += float64(sn.Duration.Milliseconds())
			sizeMB += float64(sn.SizeBytes) / (1 << 20)
		}
		n := float64(len(snaps))
		if n == 0 {
			n = 1
		}
		fmt.Fprintf(w, "%-28s %-14.1f %-14.2f\n", v.label, timeMS/n, sizeMB/n)
	}
	return nil
}

// AblationConflict disables STTree conflict resolution (Algorithm 1) and
// compares the resulting pause times: without it, conflicted sites collapse
// to one generation and transient objects pollute the old generations.
func (s *Session) AblationConflict(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: STTree conflict resolution (Cassandra-RI) ===")
	fmt.Fprintln(w, "(mispretenured transients shift cost from pauses to memory and mutator overhead)")
	var t Target
	for _, cand := range Targets() {
		if cand.Key() == "Cassandra-RI" {
			t = cand
		}
	}
	rows := []struct {
		label   string
		disable bool
	}{
		{label: "with Algorithm 1 (paper)", disable: false},
		{label: "conflict resolution off", disable: true},
	}
	fmt.Fprintf(w, "%-28s %-10s %-12s %-12s %-12s %-10s %-10s\n",
		"Variant", "pauses", "p50(ms)", "p99(ms)", "worst(ms)", "mem(MB)", "ops")
	for _, row := range rows {
		prof, err := core.ProfileApp(t.App, t.Workload, core.ProfileOptions{
			Scale:    s.cfg.Scale,
			Duration: s.cfg.ProfileDuration,
			Seed:     s.cfg.Seed,
			Analyzer: analyzer.Options{DisableConflictResolution: row.disable},
		})
		if err != nil {
			return fmt.Errorf("bench: conflict ablation: %w", err)
		}
		res, err := core.RunApp(t.App, t.Workload, core.CollectorNG2C, core.PlanPOLM2, prof.Profile, core.RunOptions{
			Scale:    s.cfg.Scale,
			Duration: s.cfg.RunDuration,
			Warmup:   s.cfg.Warmup,
			Seed:     s.cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("bench: conflict ablation run: %w", err)
		}
		fmt.Fprintf(w, "%-28s %-10d %-12s %-12s %-12s %-10d %-10d\n",
			row.label, res.WarmPauses.Len(),
			fmtMS(res.WarmPauses.Percentile(50)),
			fmtMS(res.WarmPauses.Percentile(99)),
			fmtMS(res.WarmPauses.Max()),
			res.MaxMemoryBytes>>20, res.WarmOps)
	}
	return nil
}

// AblationHoist disables the §4.4 generation-hoisting optimization and
// reports the dynamic setGeneration call counts with and without it.
// GraphChi is the interesting case: a single hoisted switch at the
// batch-load call site covers thousands of chunk allocations.
func (s *Session) AblationHoist(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: generation hoisting (§4.4, GraphChi-PR) ===")
	var t Target
	for _, cand := range Targets() {
		if cand.Key() == "GraphChi-PR" {
			t = cand
		}
	}
	rows := []struct {
		label   string
		disable bool
	}{
		{label: "hoisting on (paper)", disable: false},
		{label: "hoisting off", disable: true},
	}
	fmt.Fprintf(w, "%-24s %-16s %-16s %-12s\n", "Variant", "gen switches", "switch/op", "ops")
	for _, row := range rows {
		prof, err := core.ProfileApp(t.App, t.Workload, core.ProfileOptions{
			Scale:    s.cfg.Scale,
			Duration: s.cfg.ProfileDuration,
			Seed:     s.cfg.Seed,
			Analyzer: analyzer.Options{DisableHoisting: row.disable},
		})
		if err != nil {
			return fmt.Errorf("bench: hoist ablation: %w", err)
		}
		res, err := core.RunApp(t.App, t.Workload, core.CollectorNG2C, core.PlanPOLM2, prof.Profile, core.RunOptions{
			Scale:    s.cfg.Scale,
			Duration: s.cfg.RunDuration,
			Warmup:   s.cfg.Warmup,
			Seed:     s.cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("bench: hoist ablation run: %w", err)
		}
		perOp := 0.0
		if res.WarmOps > 0 {
			perOp = float64(res.GenSwitches) / float64(res.WarmOps)
		}
		fmt.Fprintf(w, "%-24s %-16d %-16.2f %-12d\n", row.label, res.GenSwitches, perOp, res.WarmOps)
	}
	return nil
}

// AblationEstimator compares the paper's mode estimator against a
// 90th-percentile survival estimator.
func (s *Session) AblationEstimator(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: target-generation estimator (Cassandra-WI) ===")
	t := ablationTarget()
	rows := []struct {
		label string
		est   analyzer.Estimator
	}{
		{label: "bucket mode (paper)", est: analyzer.EstimatorMode},
		{label: "90th percentile", est: analyzer.EstimatorP90},
	}
	fmt.Fprintf(w, "%-24s %-14s %-12s %-12s\n", "Variant", "instrumented", "gens", "conflicts")
	for _, row := range rows {
		prof, err := core.ProfileApp(t.App, t.Workload, core.ProfileOptions{
			Scale:    s.cfg.Scale,
			Duration: s.cfg.ProfileDuration,
			Seed:     s.cfg.Seed,
			Analyzer: analyzer.Options{Estimator: row.est},
		})
		if err != nil {
			return fmt.Errorf("bench: estimator ablation: %w", err)
		}
		fmt.Fprintf(w, "%-24s %-14d %-12d %-12d\n",
			row.label, prof.Profile.InstrumentedSites(),
			prof.Profile.UsedGenerations(), prof.Profile.Conflicts)
	}
	return nil
}

// AblationCadence varies the snapshot cadence (every k-th GC cycle) and
// reports the profiling cost against the resulting profile.
func (s *Session) AblationCadence(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablation: snapshot cadence (Cassandra-WI) ===")
	t := ablationTarget()
	fmt.Fprintf(w, "%-10s %-10s %-14s %-14s %-10s\n", "every k", "snapshots", "dump time(ms)", "instrumented", "gens")
	for _, k := range []int{1, 2, 4} {
		prof, err := core.ProfileApp(t.App, t.Workload, core.ProfileOptions{
			Scale:         s.cfg.Scale,
			Duration:      s.cfg.ProfileDuration,
			Seed:          s.cfg.Seed,
			SnapshotEvery: k,
		})
		if err != nil {
			return fmt.Errorf("bench: cadence ablation: %w", err)
		}
		var dumpMS float64
		for _, sn := range prof.Snapshots {
			dumpMS += float64(sn.Duration.Milliseconds())
		}
		fmt.Fprintf(w, "%-10d %-10d %-14.0f %-14d %-10d\n",
			k, len(prof.Snapshots), dumpMS,
			prof.Profile.InstrumentedSites(), prof.Profile.UsedGenerations())
	}
	fmt.Fprintln(w, "(sparser snapshots cut profiling cost but coarsen lifetime resolution)")
	return nil
}
