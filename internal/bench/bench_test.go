package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quickConfig shrinks every run so the whole experiment suite executes in
// seconds inside go test.
func quickConfig() Config {
	return Config{
		// The profiling window stays at its default: rare events
		// (flushes, rollovers) need the full window for Table 1's
		// sampling thresholds. Production runs are shortened.
		RunDuration: 8 * time.Minute,
		Warmup:      2 * time.Minute,
	}
}

func TestTargetsCoverPaperWorkloads(t *testing.T) {
	keys := make(map[string]bool)
	for _, target := range Targets() {
		keys[target.Key()] = true
	}
	for _, want := range []string{
		"Cassandra-WI", "Cassandra-WR", "Cassandra-RI",
		"Lucene", "GraphChi-CC", "GraphChi-PR",
	} {
		if !keys[want] {
			t.Errorf("target %s missing", want)
		}
	}
	if len(keys) != 6 {
		t.Errorf("want 6 targets, got %d", len(keys))
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	s := NewSession(quickConfig())
	if err := s.RunExperiment("nope", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiments skipped in -short mode")
	}
	s := NewSession(quickConfig())
	var buf bytes.Buffer
	if err := s.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Cassandra-WI", "GraphChi-PR", "Lucene", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	t.Log("\n" + out)
}

func TestFigures3and4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiments skipped in -short mode")
	}
	s := NewSession(quickConfig())
	var buf bytes.Buffer
	if err := s.Figure3(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Figure4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Figure 4") {
		t.Fatalf("missing figure headers:\n%s", out)
	}
	t.Log("\n" + out)
}

func TestFigures5Through9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiments skipped in -short mode")
	}
	s := NewSession(quickConfig())
	var buf bytes.Buffer
	for _, name := range []string{"fig5", "fig6", "fig7", "fig8", "fig9"} {
		if err := s.RunExperiment(name, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9", "worst-pause reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	t.Log("\n" + out)
}
