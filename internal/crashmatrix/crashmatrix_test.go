package crashmatrix

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"polm2"
	"polm2/internal/analyzer"
	"polm2/internal/recorder"
	"polm2/internal/snapshot"
)

// Outcomes of one corrupted-pipeline run. The crash-matrix contract is
// that every case lands in exactly one of these — never a panic, never a
// silently wrong profile.
const (
	outFullRecovery = "full-recovery"   // strict readers accept, profile matches the pristine one
	outSalvage      = "salvage"         // strict refuses (typed), salvage analyzes with a loss report
	outRefusal      = "typed-refusal"   // even salvage refuses, with a typed error
	outPanic        = "panic"           // must never happen
	outUntyped      = "untyped-refusal" // must never happen
	outSilentWrong  = "silently-wrong"  // must never happen
)

// pristine runs one short profiling phase into dir, returning the records
// and snapshot subdirectories plus the canonical profile JSON.
func pristine(t *testing.T, dir string) (recDir, snapDir string, baseline []byte) {
	t.Helper()
	recDir = filepath.Join(dir, "records")
	snapDir = filepath.Join(dir, "snaps")
	for _, d := range []string{recDir, snapDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	res, err := polm2.ProfileApp(polm2.AppByName("Cassandra"), "WI", polm2.ProfileOptions{
		Duration:      45 * time.Second,
		Scale:         512,
		Seed:          1,
		SnapshotEvery: 2,
		RecordsDir:    recDir,
		SnapshotDir:   snapDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err = json.Marshal(res.Profile)
	if err != nil {
		t.Fatal(err)
	}
	return recDir, snapDir, baseline
}

// copyTree duplicates the two artifact directories into a fresh root.
func copyTree(t *testing.T, srcRec, srcSnap, dst string) (recDir, snapDir string) {
	t.Helper()
	recDir = filepath.Join(dst, "records")
	snapDir = filepath.Join(dst, "snaps")
	for src, d := range map[string]string{srcRec: recDir, srcSnap: snapDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(src, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(d, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return recDir, snapDir
}

// streamOffsets computes truncation offsets for a framed v2 id stream
// spanning the header, mid-frame, frame-boundary and trailer classes.
func streamOffsets(t *testing.T, data []byte) []int64 {
	t.Helper()
	offs := []int64{1, 3, 4, 5} // inside the magic, and right after the header
	pos := int64(5)
	frames := 0
	for {
		n, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			break
		}
		if n == 0 { // trailer: uvarint 0 + stream CRC
			offs = append(offs, pos, pos+1, pos+3)
			break
		}
		end := pos + int64(k) + int64(n) + 4
		if frames < 2 {
			offs = append(offs, pos+int64(k)+int64(n)/2, end-2, end)
		}
		pos = end
		frames++
		if pos >= int64(len(data)) {
			break
		}
	}
	offs = append(offs, int64(len(data))-1)
	return dedupeOffsets(offs, int64(len(data)))
}

// genericOffsets spans the classes positionally for formats the test does
// not parse byte-by-byte (site table, snapshot images).
func genericOffsets(size int64) []int64 {
	return dedupeOffsets([]int64{1, 3, 5, size / 4, size / 2, 3 * size / 4, size - 5, size - 1}, size)
}

func dedupeOffsets(offs []int64, size int64) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, o := range offs {
		// Offset 0 is excluded: an empty file is indistinguishable from a
		// valid-but-empty v1 artifact, by design of the v1 compatibility.
		if o <= 0 || o >= size || seen[o] {
			continue
		}
		seen[o] = true
		out = append(out, o)
	}
	return out
}

// typed reports whether err wraps one of the pipeline's typed failures.
func typed(err error) bool {
	return errors.Is(err, recorder.ErrCorrupt) || errors.Is(err, recorder.ErrTruncated) ||
		errors.Is(err, snapshot.ErrCorrupt) || errors.Is(err, snapshot.ErrTruncated) ||
		errors.Is(err, os.ErrNotExist)
}

// runCase classifies one damaged artifact tree. Any panic is converted
// into the outPanic outcome so the matrix reports which case blew up.
func runCase(recDir, snapDir string, baseline []byte) (outcome string, detail string) {
	defer func() {
		if r := recover(); r != nil {
			outcome, detail = outPanic, fmt.Sprintf("%v", r)
		}
	}()

	strictErr := func() error {
		table, err := recorder.LoadSiteTable(recDir)
		if err != nil {
			return err
		}
		for sid := range table {
			if _, err := recorder.ReadIDs(recDir, sid); err != nil {
				return err
			}
		}
		if _, err := snapshot.ReadDir(snapDir); err != nil {
			return err
		}
		return nil
	}()

	opts := analyzer.Options{App: "Cassandra", Workload: "WI"}
	if strictErr == nil {
		// Strict readers accept: the profile must be byte-for-byte the
		// pristine one, or the damage went silently unnoticed.
		snaps, err := snapshot.ReadDir(snapDir)
		if err != nil {
			return outUntyped, err.Error()
		}
		p, err := analyzer.Analyze(recDir, snaps, opts)
		if err != nil {
			return outUntyped, err.Error()
		}
		got, err := json.Marshal(p)
		if err != nil {
			return outUntyped, err.Error()
		}
		if !bytes.Equal(got, baseline) {
			return outSilentWrong, "strict readers accepted damaged artifacts"
		}
		return outFullRecovery, ""
	}
	if !typed(strictErr) {
		return outUntyped, strictErr.Error()
	}

	_, report, err := analyzer.AnalyzeSalvageDir(recDir, snapDir, opts)
	if err != nil {
		if typed(err) {
			return outRefusal, err.Error()
		}
		return outUntyped, err.Error()
	}
	// A clean report after a strict refusal is the documented live-stream
	// ambiguity: a stream cut exactly at a frame boundary (or just its
	// commit trailer gone) reads like a recording still in progress. The
	// commit trailer exists precisely so strict mode refuses it.
	return outSalvage, report.String()
}

// TestCrashMatrix sweeps truncations (and whole-file deletions) across
// every artifact kind a profiling run leaves behind, asserting the
// pipeline always ends in full recovery, salvage-with-report, or a typed
// refusal — and never panics. It runs under -race in CI.
func TestCrashMatrix(t *testing.T) {
	srcRec, srcSnap, baseline := pristine(t, t.TempDir())

	streams, err := recorder.Streams(srcRec)
	if err != nil || len(streams) == 0 {
		t.Fatalf("pristine run produced no streams: %v", err)
	}
	snapFiles, err := filepath.Glob(filepath.Join(srcSnap, "snap-*.img"))
	if err != nil || len(snapFiles) < 2 {
		t.Fatalf("pristine run produced %d snapshots: %v", len(snapFiles), err)
	}

	type target struct {
		dir  string // "records" or "snaps"
		file string
		offs func(data []byte) []int64
		// del also sweeps whole-file deletion. Losing the final snapshot
		// image is excluded: with no later chain link the directory is
		// indistinguishable from a run that took one fewer snapshot.
		del bool
	}
	streamName := fmt.Sprintf("site-%06d.bin", streams[len(streams)/2])
	generic := func(d []byte) []int64 { return genericOffsets(int64(len(d))) }
	targets := []target{
		{"records", recorder.SiteTableFile, generic, true},
		{"records", streamName, func(d []byte) []int64 { return streamOffsets(t, d) }, true},
		{"snaps", filepath.Base(snapFiles[0]), generic, true},
		{"snaps", filepath.Base(snapFiles[len(snapFiles)/2]), generic, true},
		{"snaps", filepath.Base(snapFiles[len(snapFiles)-1]), generic, false},
	}

	outcomes := make(map[string]int)
	for _, tgt := range targets {
		src := srcRec
		if tgt.dir == "snaps" {
			src = srcSnap
		}
		data, err := os.ReadFile(filepath.Join(src, tgt.file))
		if err != nil {
			t.Fatal(err)
		}
		cases := tgt.offs(data)
		if tgt.del {
			cases = append(cases, -1) // -1 marks whole-file deletion
		}
		for _, off := range cases {
			name := fmt.Sprintf("%s/%s@%d", tgt.dir, tgt.file, off)
			t.Run(name, func(t *testing.T) {
				recDir, snapDir := copyTree(t, srcRec, srcSnap, t.TempDir())
				victim := filepath.Join(recDir, tgt.file)
				if tgt.dir == "snaps" {
					victim = filepath.Join(snapDir, tgt.file)
				}
				if off < 0 {
					if err := os.Remove(victim); err != nil {
						t.Fatal(err)
					}
				} else if err := os.Truncate(victim, off); err != nil {
					t.Fatal(err)
				}
				outcome, detail := runCase(recDir, snapDir, baseline)
				switch outcome {
				case outFullRecovery, outSalvage, outRefusal:
					outcomes[outcome]++
				default:
					t.Fatalf("outcome %s: %s", outcome, detail)
				}
			})
		}
	}
	// The sweep must actually exercise the interesting end states: damage
	// was injected in every case, so salvage must dominate, and at least
	// one deletion must end in a typed refusal (the site table's).
	if outcomes[outSalvage] == 0 || outcomes[outRefusal] == 0 {
		t.Fatalf("matrix did not span the outcome classes: %v", outcomes)
	}
	t.Logf("outcomes: %v", outcomes)
}
