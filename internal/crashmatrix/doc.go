// Package crashmatrix hosts the crash-matrix corruption sweep: a
// table-driven test that truncates every artifact kind of a profiling run
// (site table, id streams, snapshot images) at byte offsets spanning the
// header, mid-frame, frame-boundary and trailer classes, and asserts the
// pipeline always ends in exactly one of full recovery,
// salvage-with-report, or a typed refusal — never a panic. It is a
// test-only package; the sweep lives in crashmatrix_test.go.
package crashmatrix
