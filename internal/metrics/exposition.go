package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// This file extends the daemon-side registry beyond plain counters:
// labeled metric names, point-in-time gauges, and fixed-bucket latency
// histograms, all rendered into the same sorted text exposition the
// /metricsz endpoint has served since the daemon existed. The rendering is
// deliberately rigid — sorted family names, fixed bucket order, integer
// nanosecond sums — because the exposition format itself is pinned by a
// golden test: dashboards and scrape configs must never be broken by an
// accidental formatting drift.

// Label is one key="value" pair attached to a metric name.
type Label struct {
	Key   string
	Value string
}

// LabelName renders a metric name with labels, e.g.
//
//	LabelName("evidence_instances", Label{"app", "Cassandra"}, Label{"workload", "WI"})
//	// evidence_instances{app="Cassandra",workload="WI"}
//
// Labels are sorted by key so the same label set always produces the same
// name however the caller ordered it. Values are escaped (backslash,
// quote, newline) so arbitrary app/workload strings cannot corrupt the
// exposition.
func LabelName(name string, labels ...Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Gauge is a point-in-time value, safe for concurrent use. Unlike Counter
// it can move in both directions: the daemon uses gauges for fleet facts
// that shrink as well as grow (instances contributing evidence, ring
// occupancy). The zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyEdges are the bucket edges the daemon's request-latency
// histograms use: a coarse log scale from 100µs to 1s. Requests beyond the
// last edge land in the +Inf overflow bucket.
func DefaultLatencyEdges() []time.Duration {
	return []time.Duration{
		100 * time.Microsecond,
		500 * time.Microsecond,
		time.Millisecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
	}
}

// LatencyHistogram counts duration observations into fixed buckets,
// lock-free on the observation path. It complements the simulation-side
// Histogram (exact, single-threaded, arbitrary reset) with what the fleet
// path needs: concurrent Observe and a stable text exposition.
//
// Rendering is cumulative, one line per bucket edge plus +Inf, then the
// observation count and the sum in integer nanoseconds:
//
//	name_bucket{le="1ms"} 3
//	...
//	name_bucket{le="+Inf"} 7
//	name_count 7
//	name_sum_ns 9876543
type LatencyHistogram struct {
	edges  []time.Duration
	counts []atomic.Uint64 // len(edges)+1; last is the +Inf overflow
	sum    atomic.Int64    // nanoseconds
}

func newLatencyHistogram(edges []time.Duration) (*LatencyHistogram, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("metrics: latency histogram needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("metrics: latency histogram edges not strictly increasing at index %d (%v <= %v)",
				i, edges[i], edges[i-1])
		}
	}
	owned := make([]time.Duration, len(edges))
	copy(owned, edges)
	return &LatencyHistogram{
		edges:  owned,
		counts: make([]atomic.Uint64, len(edges)+1),
	}, nil
}

// Observe records one duration. Negative observations clamp to zero: a
// latency below zero is a clock bug upstream, and poisoning the histogram
// would hide rather than surface it.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.edges), func(i int) bool { return d <= h.edges[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the total observed duration.
func (h *LatencyHistogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// writeExposition renders the histogram family under name. Bucket counts
// are loaded once into a snapshot first: rendering must present a single
// cumulative view even while observations land concurrently.
func (h *LatencyHistogram) writeExposition(w *strings.Builder, name string) {
	snapshot := make([]uint64, len(h.counts))
	for i := range h.counts {
		snapshot[i] = h.counts[i].Load()
	}
	sum := h.sum.Load()
	var cum uint64
	for i, edge := range h.edges {
		cum += snapshot[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, edge, cum)
	}
	cum += snapshot[len(snapshot)-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum_ns %d\n", name, sum)
}
