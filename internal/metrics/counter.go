package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The zero value is ready.
//
// Counters back the plan-distribution daemon's /metricsz endpoint; unlike
// the simulation-side Sample/Histogram/TimeSeries types they count real
// (wall-clock-world) events, so they must be lock-free on the hot path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Registry names a set of counters, gauges and latency histograms and
// renders them as one text exposition sorted by metric name. A name
// identifies exactly one metric of one kind — re-registering it as a
// different kind panics, since two subsystems silently sharing "x" as a
// counter and a gauge is a programming error, not a runtime condition.
// The zero value is unusable; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*LatencyHistogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*LatencyHistogram),
	}
}

// checkFree panics when name is already registered as a kind other than
// the one being requested (caller holds the lock).
func (r *Registry) checkFree(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram", name))
	}
}

// Counter returns the named counter, creating it on first use. Two calls
// with the same name return the same counter. Attach labels by building
// the name with LabelName.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		r.checkFree(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Attach labels
// by building the name with LabelName.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		r.checkFree(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it with the
// given bucket edges on first use (nil edges mean DefaultLatencyEdges).
// Later calls return the existing histogram; its edges are fixed at
// creation, and re-registering with different edges panics — a histogram
// whose buckets change shape mid-flight renders nonsense.
func (r *Registry) Histogram(name string, edges []time.Duration) *LatencyHistogram {
	if strings.ContainsAny(name, "{}") {
		panic(fmt.Sprintf("metrics: histogram name %q may not carry labels: the le bucket label owns the brace syntax", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		if edges != nil && !equalEdges(h.edges, edges) {
			panic(fmt.Sprintf("metrics: histogram %q re-registered with different edges", name))
		}
		return h
	}
	r.checkFree(name, "histogram")
	if edges == nil {
		edges = DefaultLatencyEdges()
	}
	h, err := newLatencyHistogram(edges)
	if err != nil {
		panic(err.Error()) // edges are compile-time literals at every call site
	}
	r.hists[name] = h
	return h
}

func equalEdges(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteTo renders the full exposition: every metric family sorted by name,
// counters and gauges as "name value" lines, histograms as cumulative
// bucket lines followed by _count and _sum_ns. The byte-level format is
// pinned by a golden test; see exposition.go.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		switch {
		case r.counters[name] != nil:
			fmt.Fprintf(&b, "%s %d\n", name, r.counters[name].Value())
		case r.gauges[name] != nil:
			fmt.Fprintf(&b, "%s %d\n", name, r.gauges[name].Value())
		default:
			r.hists[name].writeExposition(&b, name)
		}
	}
	r.mu.Unlock()

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
