package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The zero value is ready.
//
// Counters back the plan-distribution daemon's /metricsz endpoint; unlike
// the simulation-side Sample/Histogram/TimeSeries types they count real
// (wall-clock-world) events, so they must be lock-free on the hot path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Registry names a set of counters and renders them as a text exposition
// ("name value" lines, sorted by name). The zero value is unusable; use
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the named counter, creating it on first use. Two calls
// with the same name return the same counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// WriteTo renders every counter as "name value\n", sorted by name.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	type pair struct {
		name  string
		value uint64
	}
	pairs := make([]pair, len(names))
	for i, name := range names {
		pairs[i] = pair{name, r.counters[name].Value()}
	}
	r.mu.Unlock()

	var total int64
	for _, p := range pairs {
		n, err := fmt.Fprintf(w, "%s %d\n", p.name, p.value)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
