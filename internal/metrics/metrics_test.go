package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Len() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSamplePercentileNearestRank(t *testing.T) {
	var s Sample
	for _, v := range []time.Duration{5, 1, 4, 2, 3} { // unsorted on purpose
		s.Add(v * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{20, 1 * time.Millisecond},
		{40, 2 * time.Millisecond},
		{50, 3 * time.Millisecond},
		{90, 5 * time.Millisecond},
		{100, 5 * time.Millisecond},
		{1, 1 * time.Millisecond},
	}
	for _, tc := range tests {
		if got := s.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestSamplePercentileBoundsPanic(t *testing.T) {
	for _, p := range []float64{0, -1, 100.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			var s Sample
			s.Add(time.Millisecond)
			s.Percentile(p)
		}()
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(10 * time.Millisecond)
	if s.Max() != 10*time.Millisecond {
		t.Fatal("Max before second Add wrong")
	}
	s.Add(20 * time.Millisecond)
	if got := s.Max(); got != 20*time.Millisecond {
		t.Fatalf("Max after interleaved Add = %v, want 20ms", got)
	}
}

func TestSampleSumMean(t *testing.T) {
	var s Sample
	s.Add(2 * time.Millisecond)
	s.Add(4 * time.Millisecond)
	if s.Sum() != 6*time.Millisecond {
		t.Fatalf("Sum = %v, want 6ms", s.Sum())
	}
	if s.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want 3ms", s.Mean())
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestSamplePercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(time.Duration(v) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return s.Percentile(100) == s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Values() is sorted and preserves multiset membership.
func TestSampleValuesSortedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var s Sample
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		vals := s.Values()
		if len(vals) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEdgesValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("NewHistogram(nil) should fail")
	}
	if _, err := NewHistogram([]time.Duration{2, 2}); err == nil {
		t.Error("non-increasing edges should fail")
	}
	if _, err := NewHistogram([]time.Duration{3, 1}); err == nil {
		t.Error("decreasing edges should fail")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram([]time.Duration{10 * time.Millisecond, 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0)
	h.Add(9 * time.Millisecond)
	h.Add(10 * time.Millisecond) // boundary goes to the upper bucket
	h.Add(99 * time.Millisecond)
	h.Add(100 * time.Millisecond)
	h.Add(time.Second)
	want := []int{2, 2, 2}
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Counts() = %v, want %v", got, want)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("Total() = %d, want 6", h.Total())
	}
}

func TestHistogramLabels(t *testing.T) {
	h, err := NewHistogram([]time.Duration{10 * time.Millisecond, 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 3 {
		t.Fatalf("NumBuckets = %d, want 3", h.NumBuckets())
	}
	wants := []string{"[0,10ms)", "[10ms,100ms)", "[100ms,+inf)"}
	for i, w := range wants {
		if got := h.BucketLabel(i); got != w {
			t.Errorf("BucketLabel(%d) = %q, want %q", i, got, w)
		}
	}
}

// Property: histogram total always equals the number of Adds, regardless of
// the values' relationship to the edges.
func TestHistogramTotalProperty(t *testing.T) {
	edges := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	f := func(raw []int64) bool {
		h, err := NewHistogram(edges)
		if err != nil {
			return false
		}
		for _, v := range raw {
			if v < 0 {
				v = -v
			}
			h.Add(time.Duration(v))
		}
		return h.Total() == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesValidation(t *testing.T) {
	if _, err := NewTimeSeries(0); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewTimeSeries(-time.Second); err == nil {
		t.Error("negative width should fail")
	}
}

func TestTimeSeriesRecordAndSlice(t *testing.T) {
	ts, err := NewTimeSeries(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts.Record(0, 3)
	ts.Record(999*time.Millisecond, 1)
	ts.Record(1*time.Second, 5)
	ts.Record(4*time.Second, 2)
	want := []int64{4, 5, 0, 0, 2}
	got := ts.Buckets()
	if len(got) != len(want) {
		t.Fatalf("Buckets() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Buckets() = %v, want %v", got, want)
		}
	}
	slice := ts.Slice(1*time.Second, 7*time.Second)
	wantSlice := []int64{5, 0, 0, 2, 0, 0}
	for i := range wantSlice {
		if slice[i] != wantSlice[i] {
			t.Fatalf("Slice() = %v, want %v", slice, wantSlice)
		}
	}
}

func TestTimeSeriesNegativeInstantPanics(t *testing.T) {
	ts, err := NewTimeSeries(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Record at negative instant did not panic")
		}
	}()
	ts.Record(-time.Second, 1)
}

// Property: the sum over all buckets equals the sum of recorded counts.
func TestTimeSeriesConservationProperty(t *testing.T) {
	f := func(instants []uint32, counts []uint8) bool {
		ts, err := NewTimeSeries(100 * time.Millisecond)
		if err != nil {
			return false
		}
		n := len(instants)
		if len(counts) < n {
			n = len(counts)
		}
		var want int64
		for i := 0; i < n; i++ {
			c := int64(counts[i])
			ts.Record(time.Duration(instants[i])*time.Microsecond, c)
			want += c
		}
		var got int64
		for _, b := range ts.Buckets() {
			got += b
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
