package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentAdds(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("hits")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_second").Add(2)
	reg.Counter("a_first").Inc()
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a_first 1\nb_second 2\n"
	if sb.String() != want {
		t.Fatalf("exposition = %q, want %q", sb.String(), want)
	}
}
