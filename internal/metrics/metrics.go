// Package metrics provides the measurement primitives used by the POLM2
// evaluation harness: exact percentile samples for pause-time distributions
// (Figure 5), fixed-interval histograms (Figure 6), and per-second time
// series (Figure 8).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates durations and answers exact order statistics over them.
// It is sized for GC pause logs (thousands of entries per run), where exact
// percentiles are affordable and remove estimator noise from the
// reproduction.
//
// The zero value is an empty sample ready for use.
type Sample struct {
	values []time.Duration
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(d time.Duration) {
	s.values = append(s.values, d)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Max returns the largest observation, or zero for an empty sample.
func (s *Sample) Max() time.Duration {
	s.ensureSorted()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[len(s.values)-1]
}

// Sum returns the total of all observations.
func (s *Sample) Sum() time.Duration {
	var total time.Duration
	for _, v := range s.values {
		total += v
	}
	return total
}

// Mean returns the arithmetic mean, or zero for an empty sample.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	return s.Sum() / time.Duration(len(s.values))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, which matches how the paper reports pause
// percentiles. It returns zero for an empty sample and panics on a
// percentile outside (0, 100].
func (s *Sample) Percentile(p float64) time.Duration {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v outside (0, 100]", p))
	}
	s.ensureSorted()
	if len(s.values) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.values))))
	if rank < 1 {
		rank = 1
	}
	return s.values[rank-1]
}

// Values returns a copy of the observations in sorted order.
func (s *Sample) Values() []time.Duration {
	s.ensureSorted()
	out := make([]time.Duration, len(s.values))
	copy(out, s.values)
	return out
}

func (s *Sample) ensureSorted() {
	if s.sorted {
		return
	}
	sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
	s.sorted = true
}

// PaperPercentiles are the percentiles reported along the x-axis of the
// paper's Figure 5, in order.
var PaperPercentiles = []float64{50, 90, 99, 99.9, 99.99, 99.999}

// Histogram counts observations per half-open duration interval
// [edge[i], edge[i+1]), with a final overflow bucket for observations at or
// above the last edge. It reproduces the pause-interval counts of Figure 6.
type Histogram struct {
	edges  []time.Duration
	counts []int
}

// NewHistogram builds a histogram over the given strictly increasing bucket
// edges. With n edges the histogram has n+1 buckets: one below the first
// edge, n-1 between consecutive edges, and one at or above the last edge.
func NewHistogram(edges []time.Duration) (*Histogram, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("metrics: histogram edges not strictly increasing at index %d (%v <= %v)",
				i, edges[i], edges[i-1])
		}
	}
	owned := make([]time.Duration, len(edges))
	copy(owned, edges)
	return &Histogram{
		edges:  owned,
		counts: make([]int, len(edges)+1),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(d time.Duration) {
	i := sort.Search(len(h.edges), func(i int) bool { return d < h.edges[i] })
	h.counts[i]++
}

// Counts returns a copy of the per-bucket counts, lowest bucket first.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	total := 0
	for _, c := range h.counts {
		total += c
	}
	return total
}

// BucketLabel renders a human-readable label for bucket i, e.g. "[64ms,128ms)".
func (h *Histogram) BucketLabel(i int) string {
	switch {
	case i == 0:
		return fmt.Sprintf("[0,%v)", h.edges[0])
	case i < len(h.edges):
		return fmt.Sprintf("[%v,%v)", h.edges[i-1], h.edges[i])
	default:
		return fmt.Sprintf("[%v,+inf)", h.edges[len(h.edges)-1])
	}
}

// NumBuckets returns the number of buckets (edges + 1).
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// TimeSeries accumulates event counts into fixed-width time buckets. The
// benchmark harness uses one-second buckets to regenerate the
// transactions-per-second series of Figure 8.
type TimeSeries struct {
	width   time.Duration
	buckets []int64
}

// NewTimeSeries builds a series with the given bucket width.
func NewTimeSeries(width time.Duration) (*TimeSeries, error) {
	if width <= 0 {
		return nil, fmt.Errorf("metrics: time series bucket width must be positive, got %v", width)
	}
	return &TimeSeries{width: width}, nil
}

// Record adds n events at simulated instant t. Instants before zero panic;
// the simulation clock never goes negative, so such a call is a bug.
func (ts *TimeSeries) Record(t time.Duration, n int64) {
	if t < 0 {
		panic(fmt.Sprintf("metrics: time series record at negative instant %v", t))
	}
	idx := int(t / ts.width)
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, 0)
	}
	ts.buckets[idx] += n
}

// Buckets returns a copy of the per-bucket totals.
func (ts *TimeSeries) Buckets() []int64 {
	out := make([]int64, len(ts.buckets))
	copy(out, ts.buckets)
	return out
}

// Width returns the bucket width.
func (ts *TimeSeries) Width() time.Duration { return ts.width }

// Slice returns the bucket totals covering [from, to), padding with zeros if
// the series ends before to.
func (ts *TimeSeries) Slice(from, to time.Duration) []int64 {
	if to < from {
		panic(fmt.Sprintf("metrics: time series slice [%v,%v) is inverted", from, to))
	}
	lo := int(from / ts.width)
	hi := int((to + ts.width - 1) / ts.width)
	out := make([]int64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if i < len(ts.buckets) {
			out = append(out, ts.buckets[i])
		} else {
			out = append(out, 0)
		}
	}
	return out
}
