package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLabelName(t *testing.T) {
	cases := []struct {
		name   string
		labels []Label
		want   string
	}{
		{"plain", nil, "plain"},
		{"g", []Label{{"app", "Cassandra"}}, `g{app="Cassandra"}`},
		// labels sort by key regardless of argument order
		{"g", []Label{{"workload", "WI"}, {"app", "Cassandra"}},
			`g{app="Cassandra",workload="WI"}`},
		// values escape quotes, backslashes and newlines
		{"g", []Label{{"k", "a\"b\\c\nd"}}, `g{k="a\"b\\c\nd"}`},
	}
	for _, c := range cases {
		if got := LabelName(c.name, c.labels...); got != c.want {
			t.Errorf("LabelName(%q, %v) = %q, want %q", c.name, c.labels, got, c.want)
		}
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestLatencyHistogramObserve(t *testing.T) {
	h, err := newLatencyHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(time.Millisecond) // on the edge: counts into the edge's bucket (le is <=)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Hour) // overflow
	h.Observe(-5)        // clamps to zero, lands in the first bucket
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	want := time.Millisecond + 2*time.Millisecond + time.Hour
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestLatencyHistogramConcurrent(t *testing.T) {
	h, err := newLatencyHistogram(DefaultLatencyEdges())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestHistogramBadEdges(t *testing.T) {
	if _, err := newLatencyHistogram(nil); err == nil {
		t.Error("empty edges accepted")
	}
	if _, err := newLatencyHistogram([]time.Duration{2, 1}); err == nil {
		t.Error("decreasing edges accepted")
	}
}

// TestExpositionGolden pins the full /metricsz text exposition byte for
// byte: sorted family names, counter/gauge value lines, cumulative
// histogram buckets with duration-formatted le labels, _count and _sum_ns
// trailers. The daemon's endpoint serves exactly these bytes; drift here
// breaks scrapers silently, so the format is golden.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("plan_fetch_total").Add(3)
	r.Counter("evidence_merge_total").Inc()
	r.Gauge(LabelName("evidence_instances", Label{"app", "Cassandra"}, Label{"workload", "WI"})).Set(2)
	r.Gauge("trace_ring_records").Set(17)
	h := r.Histogram("plan_fetch_latency", []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	})
	h.Observe(500 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Second)
	// The rollout controller's families (planserver with Options.Rollout).
	r.Counter("feedback_reports_total").Add(2)
	r.Counter("rollout_canary_total").Inc()
	r.Counter("rollout_rollbacks_total")
	r.Gauge(LabelName("rollout_state", Label{"app", "Cassandra"}, Label{"workload", "WI"})).Set(1)
	// The anti-entropy replication families (planserver with Options.Peers).
	r.Counter("peer_sync_total").Add(4)
	r.Counter("peer_sync_error_total").Inc()
	r.Counter("peer_docs_applied_total").Add(3)
	r.Gauge("peer_divergence_gauge").Set(0)

	const want = `evidence_instances{app="Cassandra",workload="WI"} 2
evidence_merge_total 1
feedback_reports_total 2
peer_divergence_gauge 0
peer_docs_applied_total 3
peer_sync_error_total 1
peer_sync_total 4
plan_fetch_latency_bucket{le="1ms"} 2
plan_fetch_latency_bucket{le="10ms"} 3
plan_fetch_latency_bucket{le="100ms"} 3
plan_fetch_latency_bucket{le="+Inf"} 4
plan_fetch_latency_count 4
plan_fetch_latency_sum_ns 1006000000
plan_fetch_total 3
rollout_canary_total 1
rollout_rollbacks_total 0
rollout_state{app="Cassandra",workload="WI"} 1
trace_ring_records 17
`
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition drifted:\n--- want\n%s--- got\n%s", want, got)
	}
}

func TestRegistryReturnsSameInstances(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("two Counter calls returned distinct counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("two Gauge calls returned distinct gauges")
	}
	if r.Histogram("h", nil) != r.Histogram("h", nil) {
		t.Error("two Histogram calls returned distinct histograms")
	}
	// Re-registering with the same explicit edges is fine.
	edges := DefaultLatencyEdges()
	if r.Histogram("h2", edges) != r.Histogram("h2", edges) {
		t.Error("same-edge re-registration returned a distinct histogram")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("x")
	mustPanic("counter-as-gauge", func() { r.Gauge("x") })
	mustPanic("counter-as-histogram", func() { r.Histogram("x", nil) })
	r.Histogram("h", nil)
	mustPanic("histogram-as-counter", func() { r.Counter("h") })
	mustPanic("edge-change", func() { r.Histogram("h", []time.Duration{time.Second}) })
	mustPanic("labeled-histogram", func() { r.Histogram(`h2{a="b"}`, nil) })
}
