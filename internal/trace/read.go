package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Record is one decoded trace record. The encoder writes fields in a fixed
// order (seq, ts, kind, comp, name, dur, attrs) so encoded traces are
// byte-deterministic; decoding is by name and tolerates reordering, so
// hand-edited or third-party traces still load.
type Record struct {
	Seq  uint64         `json:"seq"`
	TS   int64          `json:"ts"`
	Kind string         `json:"kind"`
	Comp string         `json:"comp"`
	Name string         `json:"name"`
	Dur  int64          `json:"dur,omitempty"`
	Att  map[string]any `json:"attrs,omitempty"`
}

// Time returns the record's timestamp as a simulated instant.
func (r Record) Time() time.Duration { return time.Duration(r.TS) }

// Duration returns a span's length (zero for events).
func (r Record) Duration() time.Duration { return time.Duration(r.Dur) }

// Str returns the named string attribute, or "".
func (r Record) Str(key string) string {
	s, _ := r.Att[key].(string)
	return s
}

// Int returns the named integer attribute, or 0. JSON numbers decode as
// float64; every attribute the encoder writes is an integer, so the
// conversion is exact up to 2^53 — far beyond any simulated quantity.
func (r Record) Int(key string) int64 {
	f, _ := r.Att[key].(float64)
	return int64(f)
}

// Decode reads a JSONL trace stream into records, preserving order. Blank
// lines are skipped; a malformed line fails with its line number, since a
// trace that cannot be trusted line-for-line cannot be summarized either.
func Decode(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return out, nil
}

// ReadFile decodes a trace file written via the -trace flag.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
