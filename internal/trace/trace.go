// Package trace is the deterministic observability layer of the POLM2
// reproduction: structured span/event records, one JSON object per line
// (JSONL), timestamped from the simulated clock (or any injected clock) and
// sequenced per tracer — never from the wall clock — so two runs with the
// same seed produce byte-identical traces. That determinism is what turns
// the trace from write-only telemetry into a goldenable regression surface,
// the same property the benchmark harness relies on for its stdout.
//
// The components that emit: internal/gc (per-cycle pause spans with a
// cost-model phase breakdown), internal/online (re-profile rounds, plan
// hot-swaps, salvage and fleet events), internal/planserver (request
// handling and evidence merges, also served live from a bounded ring at
// GET /tracez), and internal/fleetclient (fetch/upload attempts and
// backoff).
//
// # Cost discipline
//
// A nil *Tracer is the disabled tracer: every method is nil-safe, and hot
// paths guard emission with Enabled(), which compiles to a pointer nil
// check. The contract — pinned by testing.B allocs/op assertions in
// internal/gc — is zero allocations on the host when disabled, and bounded
// allocation when enabled (the encoder reuses one buffer under the
// tracer's lock; only variadic attribute slices and map growth allocate).
package trace

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Record kinds.
const (
	// KindEvent is an instantaneous occurrence.
	KindEvent = "event"
	// KindSpan is an interval with a duration.
	KindSpan = "span"
)

// Attr is one key/value attribute of a record. Construct with String,
// Int64, Uint64 or Dur; the zero Attr renders as key "" with value 0.
type Attr struct {
	Key   string
	str   string
	num   int64
	isStr bool
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, str: value, isStr: true} }

// Int64 builds an integer-valued attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, num: value} }

// Uint64 builds an integer-valued attribute from a uint64. Values above
// MaxInt64 saturate; no simulated quantity gets near that.
func Uint64(key string, value uint64) Attr {
	if value > 1<<63-1 {
		value = 1<<63 - 1
	}
	return Attr{Key: key, num: int64(value)}
}

// Dur builds an integer-valued attribute holding a duration in
// nanoseconds. Durations are always rendered as integer nanoseconds, never
// as formatted strings, so the encoding has no locale or rounding
// ambiguity.
func Dur(key string, value time.Duration) Attr { return Attr{Key: key, num: int64(value)} }

// Bool builds an integer-valued attribute rendering true as 1 and false as
// 0, keeping the record grammar to two value shapes (string, integer).
func Bool(key string, value bool) Attr {
	var n int64
	if value {
		n = 1
	}
	return Attr{Key: key, num: n}
}

// Options parameterizes a tracer. At least one of Writer and Ring should
// be set, or the tracer encodes records nobody sees.
type Options struct {
	// Writer receives every encoded record, one line per record. Writes
	// happen under the tracer's lock, in seq order. Nil discards.
	Writer io.Writer
	// Ring, when non-nil, additionally keeps the most recent records in
	// memory (the daemon serves it at GET /tracez).
	Ring *Ring
	// Now supplies timestamps for Event and Start. Simulation-side
	// tracers inject the simulated clock's Now; the daemon injects its
	// own monotonic-from-start clock. Nil stamps zero — records are still
	// totally ordered by seq.
	Now func() time.Duration
}

// Tracer encodes and publishes records. It is safe for concurrent use; a
// nil *Tracer is the disabled tracer and all its methods are no-ops.
type Tracer struct {
	mu   sync.Mutex
	w    io.Writer
	ring *Ring
	now  func() time.Duration
	seq  uint64
	buf  []byte
	err  error
}

// New builds a tracer.
func New(opts Options) *Tracer {
	return &Tracer{w: opts.Writer, ring: opts.Ring, now: opts.Now}
}

// Enabled reports whether the tracer emits at all. Call sites on hot paths
// guard with it so a disabled tracer costs one nil check and nothing else:
//
//	if tr.Enabled() {
//	    tr.Event("gc", "cycle", trace.Uint64("cycle", n))
//	}
func (t *Tracer) Enabled() bool { return t != nil }

// Ring returns the tracer's in-memory ring, or nil.
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// Err returns the first write error the tracer met, or nil. Tracing is
// observability, not control flow: emission never fails the traced
// operation, but the daemon and CLIs surface this at shutdown.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Event emits an instantaneous record stamped with the tracer's clock.
func (t *Tracer) Event(component, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	var ts time.Duration
	if t.now != nil {
		ts = t.now()
	}
	t.emit(KindEvent, component, name, ts, 0, attrs)
}

// EventAt emits an instantaneous record at an explicit instant (the
// simulation emits at simulated instants that are not "now" for the
// tracer).
func (t *Tracer) EventAt(ts time.Duration, component, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit(KindEvent, component, name, ts, 0, attrs)
}

// Span emits an interval record covering [start, start+dur).
func (t *Tracer) Span(component, name string, start, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit(KindSpan, component, name, start, dur, attrs)
}

// emit encodes one record and hands it to the sinks. The buffer is owned
// by the tracer and reused; the ring copies what it keeps.
func (t *Tracer) emit(kind, component, name string, ts, dur time.Duration, attrs []Attr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, t.seq, 10)
	t.seq++
	b = append(b, `,"ts":`...)
	b = strconv.AppendInt(b, int64(ts), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, kind...)
	b = append(b, `","comp":`...)
	b = appendJSONString(b, component)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, name)
	if kind == KindSpan {
		b = append(b, `,"dur":`...)
		b = strconv.AppendInt(b, int64(dur), 10)
	}
	if len(attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, a.Key)
			b = append(b, ':')
			if a.isStr {
				b = appendJSONString(b, a.str)
			} else {
				b = strconv.AppendInt(b, a.num, 10)
			}
		}
		b = append(b, '}')
	}
	b = append(b, '}', '\n')
	t.buf = b
	if t.ring != nil {
		t.ring.add(b)
	}
	if t.w != nil {
		if _, err := t.w.Write(b); err != nil && t.err == nil {
			t.err = fmt.Errorf("trace: writing record: %w", err)
		}
	}
}

// appendJSONString appends s as a JSON string literal. Control characters,
// quotes and backslashes are escaped; invalid UTF-8 is replaced, matching
// encoding/json. Everything the simulator emits is ASCII, so the fast path
// is a straight copy.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			b = append(b, c)
			i++
			continue
		}
		if c < utf8.RuneSelf {
			switch c {
			case '"', '\\':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, `�`...)
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}
