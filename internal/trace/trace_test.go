package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// emitFixture writes a fixed record sequence through a fresh tracer and
// returns the encoded bytes.
func emitFixture() []byte {
	var buf bytes.Buffer
	var now time.Duration
	tr := New(Options{Writer: &buf, Now: func() time.Duration { return now }})
	tr.Event("gc", "cycle", Uint64("cycle", 1), String("kind", "young"))
	now = 5 * time.Millisecond
	tr.Span("gc", "pause", 2*time.Millisecond, 3*time.Millisecond,
		Int64("bytes_copied", 4096), Dur("base", 500*time.Microsecond))
	tr.EventAt(7*time.Millisecond, "online", "plan_swap", Int64("sites", 12))
	tr.Event("fleet", "backoff") // no attrs: the attrs object must be absent
	return buf.Bytes()
}

// TestDeterministicEncoding pins the exact wire bytes: field order, integer
// timestamps, attribute order as given. Any drift here breaks every golden
// trace downstream, so the encoding itself is golden.
func TestDeterministicEncoding(t *testing.T) {
	want := `{"seq":0,"ts":0,"kind":"event","comp":"gc","name":"cycle","attrs":{"cycle":1,"kind":"young"}}
{"seq":1,"ts":2000000,"kind":"span","comp":"gc","name":"pause","dur":3000000,"attrs":{"bytes_copied":4096,"base":500000}}
{"seq":2,"ts":7000000,"kind":"event","comp":"online","name":"plan_swap","attrs":{"sites":12}}
{"seq":3,"ts":5000000,"kind":"event","comp":"fleet","name":"backoff"}
`
	got := string(emitFixture())
	if got != want {
		t.Errorf("encoding drifted:\n--- want\n%s--- got\n%s", want, got)
	}
	if !bytes.Equal(emitFixture(), emitFixture()) {
		t.Error("two identical emission sequences produced different bytes")
	}
}

// TestEncodingIsValidJSON runs every emitted line through encoding/json,
// including keys and values that need escaping.
func TestEncodingIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Writer: &buf})
	tr.Event("comp\"x", "na\\me", String("k\n", "v\tq\x01"), String("utf8", "héllo\xffworld"))
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("emitted line is not valid JSON: %v\n%s", err, line)
		}
	}
	recs, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Comp != "comp\"x" || recs[0].Name != "na\\me" {
		t.Errorf("escaped identity did not round-trip: %+v", recs[0])
	}
	if got := recs[0].Str("k\n"); got != "v\tq\x01" {
		t.Errorf("escaped attribute did not round-trip: %q", got)
	}
}

// TestDecodeRoundTrip checks the reader returns what the writer meant.
func TestDecodeRoundTrip(t *testing.T) {
	recs, err := Decode(bytes.NewReader(emitFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("decoded %d records, want 4", len(recs))
	}
	span := recs[1]
	if span.Kind != KindSpan || span.Comp != "gc" || span.Name != "pause" {
		t.Errorf("span identity mangled: %+v", span)
	}
	if span.Time() != 2*time.Millisecond || span.Duration() != 3*time.Millisecond {
		t.Errorf("span timing mangled: ts=%v dur=%v", span.Time(), span.Duration())
	}
	if span.Int("bytes_copied") != 4096 || span.Int("base") != int64(500*time.Microsecond) {
		t.Errorf("span attrs mangled: %+v", span.Att)
	}
	if recs[0].Str("kind") != "young" {
		t.Errorf("string attr mangled: %+v", recs[0].Att)
	}
	if recs[3].Att != nil {
		t.Errorf("attr-less record decoded with attrs: %+v", recs[3].Att)
	}
}

func TestDecodeRejectsMalformedLine(t *testing.T) {
	_, err := Decode(strings.NewReader("{\"seq\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line not reported with its number: %v", err)
	}
}

// TestNilTracerIsSafe exercises every method on the disabled tracer.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Ring() != nil || tr.Err() != nil {
		t.Fatal("nil tracer leaks state")
	}
	tr.Event("a", "b", Int64("k", 1))
	tr.EventAt(time.Second, "a", "b")
	tr.Span("a", "b", 0, time.Second)
}

// TestNilTracerZeroAllocs pins the cost contract of the disabled tracer:
// a guarded call site allocates nothing. The same contract is re-asserted
// on the real GC hot path in internal/gc's benchmarks.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			tr.Event("gc", "cycle", Uint64("cycle", 1))
		}
	})
	if allocs != 0 {
		t.Fatalf("guarded disabled-tracer call allocates %v allocs/op, want 0", allocs)
	}
}

// TestRingEviction fills a ring past capacity and checks only the newest
// records survive, oldest-first on read.
func TestRingEviction(t *testing.T) {
	ring := NewRing(3)
	tr := New(Options{Ring: ring})
	for i := 0; i < 5; i++ {
		tr.Event("c", fmt.Sprintf("e%d", i))
	}
	if ring.Len() != 3 {
		t.Fatalf("ring holds %d records, want 3", ring.Len())
	}
	if ring.Total() != 5 {
		t.Fatalf("ring total %d, want 5", ring.Total())
	}
	var buf bytes.Buffer
	if _, err := ring.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range recs {
		names = append(names, r.Name)
	}
	if got, want := strings.Join(names, ","), "e2,e3,e4"; got != want {
		t.Fatalf("ring contents %s, want %s", got, want)
	}
}

func TestRingDefaultSize(t *testing.T) {
	if got := NewRing(0); len(got.lines) != DefaultRingSize {
		t.Fatalf("NewRing(0) capacity %d, want %d", len(got.lines), DefaultRingSize)
	}
}

// TestConcurrentEmission hammers one tracer from many goroutines; the race
// detector checks the locking, and every line must still be whole (no
// interleaved partial writes) with a dense seq space.
func TestConcurrentEmission(t *testing.T) {
	var buf bytes.Buffer
	ring := NewRing(64)
	tr := New(Options{Writer: &syncWriter{w: &buf}, Ring: ring})
	var wg sync.WaitGroup
	const goroutines, per = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Event("worker", "tick", Int64("g", int64(g)), Int64("i", int64(i)))
			}
		}(g)
	}
	wg.Wait()
	recs, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*per {
		t.Fatalf("decoded %d records, want %d", len(recs), goroutines*per)
	}
	seen := make(map[uint64]bool)
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
	for i := uint64(0); i < goroutines*per; i++ {
		if !seen[i] {
			t.Fatalf("seq %d missing", i)
		}
	}
}

// syncWriter serializes writes; bytes.Buffer alone is not goroutine-safe
// and the tracer already holds its own lock, but the test documents that
// the writer contract is "called under the tracer's lock".
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestWriterErrorSurfaces checks the first sink failure is retained.
func TestWriterErrorSurfaces(t *testing.T) {
	tr := New(Options{Writer: failWriter{}})
	tr.Event("a", "b")
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("sink error lost: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk gone") }

// BenchmarkEventDisabled measures the guarded disabled-tracer call — the
// per-GC-cycle cost every simulation pays when -trace is off.
func BenchmarkEventDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Event("gc", "cycle", Uint64("cycle", uint64(i)))
		}
	}
}

// BenchmarkEventEnabled measures an enabled emission into a ring (no I/O):
// the low-alloc-on budget.
func BenchmarkEventEnabled(b *testing.B) {
	tr := New(Options{Ring: NewRing(1024)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event("gc", "cycle", Uint64("cycle", uint64(i)), String("kind", "young"))
	}
}
