package trace

import (
	"io"
	"sync"
)

// Ring keeps the most recent trace records in a bounded in-memory buffer.
// The plan-distribution daemon serves it at GET /tracez: the trace file is
// for offline analysis, the ring is for "what has the daemon done lately"
// without shelling into the host. Records are stored as their encoded
// JSONL lines; once capacity is reached, each new record evicts the
// oldest.
type Ring struct {
	mu    sync.Mutex
	lines [][]byte
	next  int
	full  bool
	total uint64
}

// DefaultRingSize is the record capacity the daemon uses. At roughly 150
// bytes per encoded record the ring tops out near 600 KiB — bounded however
// long the daemon runs, yet deep enough to hold several full fleet rounds
// (one fetch/merge pair per instance per re-profile interval).
const DefaultRingSize = 4096

// NewRing builds a ring holding at most n records. Non-positive n falls
// back to DefaultRingSize.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{lines: make([][]byte, n)}
}

// add copies one encoded line into the ring (the tracer reuses its
// encoding buffer, so the ring must own its bytes).
func (r *Ring) add(line []byte) {
	owned := make([]byte, len(line))
	copy(owned, line)
	r.mu.Lock()
	r.lines[r.next] = owned
	r.next++
	if r.next == len(r.lines) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Len returns the number of records currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.lines)
	}
	return r.next
}

// Total returns the number of records ever added, including evicted ones.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriteTo writes the held records oldest-first. It snapshots the ring
// under the lock and writes outside it, so a slow reader cannot stall
// emitters.
func (r *Ring) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	snapshot := make([][]byte, 0, len(r.lines))
	if r.full {
		snapshot = append(snapshot, r.lines[r.next:]...)
	}
	snapshot = append(snapshot, r.lines[:r.next]...)
	r.mu.Unlock()

	var total int64
	for _, line := range snapshot {
		n, err := w.Write(line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
