package faultio

import (
	"strings"
	"testing"
	"time"
)

func TestParseNetSpec(t *testing.T) {
	spec := "seed=9;partition:inst-3..7@t=40s/20s;drop:upload%5;dup:upload%10;delay:fetch%25@250ms;err5xx%2;stale:upload%4"
	p, err := ParseNetSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 {
		t.Fatalf("seed = %d, want 9", p.Seed)
	}
	if len(p.Faults) != 6 {
		t.Fatalf("parsed %d faults, want 6: %+v", len(p.Faults), p.Faults)
	}
	part := p.Faults[0]
	if part.Kind != NetPartition || part.Prefix != "inst" || part.First != 3 || part.Last != 7 ||
		part.Start != 40*time.Second || part.Dur != 20*time.Second {
		t.Fatalf("partition = %+v", part)
	}
	if d := p.Faults[3]; d.Kind != NetDelay || d.Op != "fetch" || d.Pct != 25 || d.Delay != 250*time.Millisecond {
		t.Fatalf("delay = %+v", p.Faults[3])
	}
	if e := p.Faults[4]; e.Kind != NetErr5xx || e.Op != "" || e.Pct != 2 {
		t.Fatalf("err5xx = %+v", p.Faults[4])
	}

	// String renders back into the grammar and re-parses to the same plan.
	rt, err := ParseNetSpec(p.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", p.String(), err)
	}
	if rt.String() != p.String() {
		t.Fatalf("round trip %q != %q", rt.String(), p.String())
	}
}

func TestParseNetSpecPrefixedUpperBound(t *testing.T) {
	p, err := ParseNetSpec("partition:inst-3..inst-7@t=1s/1s")
	if err != nil {
		t.Fatal(err)
	}
	if f := p.Faults[0]; f.First != 3 || f.Last != 7 {
		t.Fatalf("range = %d..%d, want 3..7", f.First, f.Last)
	}
}

func TestParseNetSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"seed=5",                       // no faults
		"drop:upload",                  // no percentage
		"drop:upload%101",              // pct out of range
		"drop:reads%5",                 // unknown op
		"flood:upload%5",               // unknown kind
		"delay:fetch%10",               // delay without duration
		"partition:inst-3..7",          // no window
		"partition:inst-7..3@t=1s/1s",  // inverted range
		"partition:3..7@t=1s/1s",       // no prefix
		"partition:inst-3..7@t=1s/-2s", // negative duration
		"partition:inst-a..7@t=1s/1s",  // non-numeric bound
		"seed=banana;drop:upload%5",    // bad seed
		"drop:upload%5@nonsense",       // bad delay
	} {
		if _, err := ParseNetSpec(spec); err == nil {
			t.Errorf("ParseNetSpec(%q) accepted", spec)
		}
	}
}

func TestPartitionWindows(t *testing.T) {
	p, err := ParseNetSpec("partition:inst-0..1@t=10s/5s;partition:inst-4..6@t=20s/10s")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		inst string
		at   time.Duration
		want bool
	}{
		{"inst-0", 10 * time.Second, true},
		{"inst-1", 14 * time.Second, true},
		{"inst-1", 15 * time.Second, false}, // window end is exclusive
		{"inst-2", 12 * time.Second, false},
		{"inst-5", 25 * time.Second, true},
		{"inst-5", 5 * time.Second, false},
		{"node-5", 25 * time.Second, false}, // foreign prefix
		{"inst-x", 25 * time.Second, false}, // non-numeric index
	}
	for _, c := range cases {
		if got := p.Partitioned(c.inst, c.at); got != c.want {
			t.Errorf("Partitioned(%s, %v) = %v, want %v", c.inst, c.at, got, c.want)
		}
	}
	if got := p.PartitionsClearBy(); got != 30*time.Second {
		t.Fatalf("PartitionsClearBy = %v, want 30s", got)
	}
	if got := len(p.Partitions()); got != 2 {
		t.Fatalf("Partitions = %d entries, want 2", got)
	}
	var nilPlan *NetPlan
	if nilPlan.Partitioned("inst-0", 0) || nilPlan.PartitionsClearBy() != 0 {
		t.Fatal("nil plan partitions")
	}
}

func TestDrawDeterministicAndSeedSensitive(t *testing.T) {
	a, err := ParseNetSpec("seed=7;drop:upload%30")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseNetSpec("seed=7;drop:upload%30")
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseNetSpec("seed=8;drop:upload%30")
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	var fires, differs int
	for i := uint64(0); i < n; i++ {
		_, fa := a.Draw(NetDrop, "upload", "inst-3", i)
		_, fb := b.Draw(NetDrop, "upload", "inst-3", i)
		_, fc := c.Draw(NetDrop, "upload", "inst-3", i)
		if fa != fb {
			t.Fatalf("same seed diverged at decision %d", i)
		}
		if fa {
			fires++
		}
		if fa != fc {
			differs++
		}
	}
	// ~30% of draws fire, and a different seed decides differently often.
	if fires < n/5 || fires > n/2 {
		t.Fatalf("fired %d/%d draws at 30%%", fires, n)
	}
	if differs == 0 {
		t.Fatal("seeds 7 and 8 made identical decisions")
	}
	// Op and kind filters gate the draw.
	if _, ok := a.Draw(NetDrop, "fetch", "inst-3", 1); ok {
		t.Fatal("drop:upload fired on a fetch")
	}
	if _, ok := a.Draw(NetDup, "upload", "inst-3", 1); ok {
		t.Fatal("dup fired with no dup fault planned")
	}
	var nilPlan *NetPlan
	if _, ok := nilPlan.Draw(NetDrop, "upload", "inst-3", 1); ok {
		t.Fatal("nil plan fired")
	}
}

func TestNetPlanStringIncludesEverything(t *testing.T) {
	p, err := ParseNetSpec("seed=3;delay:fetch%10@5ms;partition:inst-0..2@t=1s/2s")
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"seed=3", "delay:fetch%10@5ms", "partition:inst-0..2@t=1s/2s"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
