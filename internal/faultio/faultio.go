// Package faultio injects deterministic, seed-driven I/O faults into the
// profiling pipeline's artifact writes — the adverse conditions a
// production profiling run actually meets: the profiled process killed
// mid-run, a disk filling up, a page cache lost on power failure.
//
// Faults model what the *disk* ends up holding, not what the writing
// process observes: a crashed process never sees its own torn write, so
// injected writers report success while silently dropping or mangling
// bytes. The Recorder and Dumper keep running; the Analyzer later meets the
// damage and must salvage (see analyzer.AnalyzeSalvage).
//
// Two injection modes are provided:
//
//   - live: Create/WrapWriter interpose on the artifact file writes
//     (short writes, torn streams, bit flips, crash-after-k-syscalls,
//     missing files);
//   - post-hoc: Corrupt applies truncation, bit flips and deletions to an
//     already-written artifact directory, which is how the crash-matrix
//     tests sweep byte-offset classes precisely.
//
// Every choice a fault makes (which write, which byte, which bit) derives
// from the plan seed and the artifact file name, never from wall-clock or
// map order, so a fault plan replays identically across runs and workers.
package faultio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the fault classes of the fault model (DESIGN.md §9).
type Kind int

// Fault kinds.
const (
	// KindShortWrite persists only a prefix of one chosen write syscall;
	// the remainder of that write is lost but later writes land normally,
	// leaving a hole mid-stream.
	KindShortWrite Kind = iota + 1
	// KindTorn drops every byte from a chosen stream offset onward — the
	// classic truncation left by a process killed mid-append.
	KindTorn
	// KindTruncate truncates the finished file at byte N (post-hoc).
	KindTruncate
	// KindBitFlip flips one bit of one byte.
	KindBitFlip
	// KindCrash stops the world after the k-th write syscall across all
	// artifact files: every later write (and every later create) is lost,
	// as if the machine lost power.
	KindCrash
	// KindMissing loses the whole file: it never reaches the directory.
	KindMissing
)

func (k Kind) String() string {
	switch k {
	case KindShortWrite:
		return "short"
	case KindTorn:
		return "torn"
	case KindTruncate:
		return "truncate"
	case KindBitFlip:
		return "bitflip"
	case KindCrash:
		return "crash"
	case KindMissing:
		return "missing"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one planned fault.
type Fault struct {
	Kind Kind
	// Match is a path.Match glob against the artifact file's base name;
	// empty matches every file. Ignored by KindCrash.
	Match string
	// Offset is the byte offset for torn/truncate/bitflip faults. A
	// negative offset counts from the file end; OffsetSet false derives a
	// deterministic offset from the plan seed and the file name.
	Offset    int64
	OffsetSet bool
	// AfterOps is the crash point for KindCrash: the number of write
	// syscalls that still reach the disk. Zero derives it from the seed.
	AfterOps int
}

func (f Fault) String() string {
	s := f.Kind.String()
	if f.Match != "" {
		s += ":" + f.Match
	}
	if f.OffsetSet {
		s += "@" + strconv.FormatInt(f.Offset, 10)
	}
	if f.AfterOps > 0 {
		s += "#" + strconv.Itoa(f.AfterOps)
	}
	return s
}

// Plan is a complete, replayable fault plan.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// String renders the plan back into ParseSpec's grammar.
func (p *Plan) String() string {
	parts := []string{"seed=" + strconv.FormatInt(p.Seed, 10)}
	for _, f := range p.Faults {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, ";")
}

// ParseSpec parses a fault plan from its flag syntax:
//
//	spec  = "seed=N" *( ";" fault )  |  fault *( ";" fault )
//	fault = kind [ ":" glob ] [ "@" offset ] [ "#" afterOps ]
//	kind  = "short" | "torn" | "truncate" | "bitflip" | "crash" | "missing"
//
// Examples: "seed=7;torn:site-*.bin", "crash#2500",
// "bitflip:snap-*.img@100", "missing:sites.tsv".
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{Seed: 1}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultio: bad seed %q: %w", v, err)
			}
			p.Seed = seed
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, err
		}
		p.Faults = append(p.Faults, f)
	}
	if len(p.Faults) == 0 {
		return nil, fmt.Errorf("faultio: spec %q plans no faults", spec)
	}
	return p, nil
}

func parseFault(s string) (Fault, error) {
	var f Fault
	rest := s
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil || n <= 0 {
			return f, fmt.Errorf("faultio: bad crash point in %q", s)
		}
		f.AfterOps = n
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		off, err := strconv.ParseInt(rest[i+1:], 10, 64)
		if err != nil {
			return f, fmt.Errorf("faultio: bad offset in %q", s)
		}
		f.Offset, f.OffsetSet = off, true
		rest = rest[:i]
	}
	kind, glob, _ := strings.Cut(rest, ":")
	switch kind {
	case "short":
		f.Kind = KindShortWrite
	case "torn":
		f.Kind = KindTorn
	case "truncate":
		f.Kind = KindTruncate
	case "bitflip":
		f.Kind = KindBitFlip
	case "crash":
		f.Kind = KindCrash
	case "missing":
		f.Kind = KindMissing
	default:
		return f, fmt.Errorf("faultio: unknown fault kind %q in %q", kind, s)
	}
	if glob != "" {
		if _, err := filepath.Match(glob, "probe"); err != nil {
			return f, fmt.Errorf("faultio: bad glob %q in %q: %w", glob, s, err)
		}
		f.Match = glob
	}
	return f, nil
}

// mix is a splitmix64 step: the deterministic source every per-file choice
// derives from.
func mix(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// derive hashes the plan seed with a file name into a stable uint64.
func derive(seed int64, name string, salt uint64) uint64 {
	h := mix(uint64(seed) ^ salt)
	for i := 0; i < len(name); i++ {
		h = mix(h ^ uint64(name[i]))
	}
	return h
}

// Injector applies a Plan. The zero value (and a nil *Injector) injects
// nothing and writes straight through, so callers can thread one seam
// unconditionally.
type Injector struct {
	plan *Plan
	// ops counts write syscalls across every wrapped file, the clock the
	// crash fault ticks on.
	ops      int
	crashAt  int
	crashed  bool
	hasCrash bool
}

// New builds an injector for the plan. A nil plan yields a pass-through
// injector.
func New(plan *Plan) *Injector {
	in := &Injector{plan: plan}
	if plan == nil {
		return in
	}
	for _, f := range plan.Faults {
		if f.Kind == KindCrash {
			in.hasCrash = true
			in.crashAt = f.AfterOps
			if in.crashAt == 0 {
				in.crashAt = int(derive(plan.Seed, "crash", 0xc5a5)%4096) + 64
			}
		}
	}
	return in
}

// Plan returns the injector's plan (nil for a pass-through injector).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// Crashed reports whether the crash fault has fired.
func (in *Injector) Crashed() bool { return in != nil && in.crashed }

// faultsFor returns the live-mode faults whose glob matches the base name.
func (in *Injector) faultsFor(base string) []Fault {
	if in == nil || in.plan == nil {
		return nil
	}
	var out []Fault
	for _, f := range in.plan.Faults {
		if f.Kind == KindCrash || f.Kind == KindTruncate {
			continue // crash is global; truncate is post-hoc only
		}
		if f.Match == "" {
			out = append(out, f)
			continue
		}
		if ok, _ := filepath.Match(f.Match, base); ok {
			out = append(out, f)
		}
	}
	return out
}

// Create opens path for writing through the fault plan. The returned
// WriteCloser always reports success — a crashed process never observes its
// own lost writes — but what reaches the disk is governed by the plan.
func (in *Injector) Create(path string) (io.WriteCloser, error) {
	// Atomic writers create "name.tmp" and rename; faults target the
	// logical artifact name, so the suffix is invisible to globs.
	base := strings.TrimSuffix(filepath.Base(path), ".tmp")
	faults := in.faultsFor(base)
	for _, f := range faults {
		if f.Kind == KindMissing {
			// The file never reaches the directory.
			return discardFile{}, nil
		}
	}
	if in != nil && in.crashed {
		// Files created after the crash point are lost too.
		return discardFile{}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if in == nil || in.plan == nil {
		return f, nil
	}
	fw := &faultWriter{in: in, f: f, name: base}
	fw.configure(faults)
	return fw, nil
}

// configure arms the writer with its matching live faults.
func (fw *faultWriter) configure(faults []Fault) {
	seed := fw.in.plan.Seed
	for _, fa := range faults {
		switch fa.Kind {
		case KindTorn:
			off := fa.Offset
			if !fa.OffsetSet {
				off = int64(derive(seed, fw.name, 0x7024) % 8192)
			}
			fw.tornAt = off
			fw.hasTorn = true
		case KindShortWrite:
			fw.shortAtOp = int(derive(seed, fw.name, 0x54a3) % 256)
			fw.hasShort = true
		case KindBitFlip:
			off := fa.Offset
			if !fa.OffsetSet {
				off = int64(derive(seed, fw.name, 0xb1f1) % 4096)
			}
			fw.flipAt = off
			fw.flipBit = uint(derive(seed, fw.name, 0xb172) % 8)
			fw.hasFlip = true
		}
	}
}

// WrapWriter interposes the fault plan on an existing writer, using name
// for glob matching and offset derivation. The underlying writer is never
// handed an error to surface: lost bytes are silently dropped.
func (in *Injector) WrapWriter(name string, w io.Writer) io.Writer {
	if in == nil || in.plan == nil {
		return w
	}
	faults := in.faultsFor(filepath.Base(name))
	for _, f := range faults {
		if f.Kind == KindMissing {
			return discardFile{} // the file's content is lost wholesale
		}
	}
	fw := &faultWriter{in: in, f: nopCloser{w}, name: filepath.Base(name)}
	fw.configure(faults)
	return fw
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// discardFile swallows a missing file's bytes.
type discardFile struct{}

func (discardFile) Write(p []byte) (int, error) { return len(p), nil }
func (discardFile) Close() error                { return nil }

// faultWriter applies live faults to one file's write stream.
type faultWriter struct {
	in   *Injector
	f    io.WriteCloser
	name string
	// pos is the logical stream offset (bytes the writer claims written).
	pos int64
	// op counts this file's write syscalls (for the short-write choice).
	op int

	hasTorn bool
	tornAt  int64

	hasShort  bool
	shortAtOp int
	shortDone bool

	hasFlip bool
	flipAt  int64
	flipBit uint
}

// Write claims full success while persisting only what the fault plan
// allows.
func (fw *faultWriter) Write(p []byte) (int, error) {
	n := len(p)
	fw.op++
	fw.in.ops++
	if fw.in.hasCrash && !fw.in.crashed && fw.in.ops > fw.in.crashAt {
		fw.in.crashed = true
	}
	if fw.in.crashed {
		fw.pos += int64(n)
		return n, nil // lost to the crash
	}
	persist := p
	if fw.hasTorn && fw.pos+int64(n) > fw.tornAt {
		keep := fw.tornAt - fw.pos
		if keep < 0 {
			keep = 0
		}
		persist = p[:keep]
		// Everything past the tear point is gone for good.
		fw.hasTorn = false
		fw.hasShort = false
		fw.hasFlip = false
		fw.writeThrough(persist)
		fw.pos += int64(n)
		fw.f = discardFile{}
		return n, nil
	}
	if fw.hasShort && !fw.shortDone && fw.op > fw.shortAtOp && n > 1 {
		fw.shortDone = true
		persist = p[:n/2]
		fw.writeThrough(persist)
		fw.pos += int64(n)
		return n, nil
	}
	if fw.hasFlip && fw.pos <= fw.flipAt && fw.flipAt < fw.pos+int64(n) {
		mangled := make([]byte, n)
		copy(mangled, p)
		mangled[fw.flipAt-fw.pos] ^= 1 << fw.flipBit
		persist = mangled
		fw.hasFlip = false
	}
	fw.writeThrough(persist)
	fw.pos += int64(n)
	return n, nil
}

// writeThrough persists bytes, ignoring real I/O errors the faulted
// process would never have observed anyway.
func (fw *faultWriter) writeThrough(p []byte) {
	if len(p) == 0 {
		return
	}
	fw.f.Write(p) //nolint:errcheck // fault model: the process cannot see it
}

func (fw *faultWriter) Close() error { return fw.f.Close() }

// Action describes one post-hoc corruption Corrupt performed.
type Action struct {
	File   string
	Kind   Kind
	Offset int64
}

func (a Action) String() string {
	return fmt.Sprintf("%s %s@%d", a.Kind, a.File, a.Offset)
}

// Corrupt applies the plan's post-hoc faults (truncate, bitflip, torn,
// missing) to the files of an artifact directory and reports what it did.
// Live-only kinds (short, crash) are ignored. File order is sorted, so the
// action list is deterministic.
func (in *Injector) Corrupt(dir string) ([]Action, error) {
	if in == nil || in.plan == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("faultio: corrupting %s: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var actions []Action
	for _, f := range in.plan.Faults {
		for _, name := range names {
			if f.Match != "" {
				if ok, _ := filepath.Match(f.Match, name); !ok {
					continue
				}
			}
			path := filepath.Join(dir, name)
			act, err := applyPostHoc(in.plan.Seed, path, name, f)
			if err != nil {
				return actions, err
			}
			if act != nil {
				actions = append(actions, *act)
			}
		}
	}
	return actions, nil
}

func applyPostHoc(seed int64, path, name string, f Fault) (*Action, error) {
	switch f.Kind {
	case KindMissing:
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("faultio: removing %s: %w", name, err)
		}
		return &Action{File: name, Kind: f.Kind}, nil
	case KindTruncate, KindTorn:
		info, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("faultio: %w", err)
		}
		off := f.Offset
		if !f.OffsetSet {
			if info.Size() > 1 {
				off = 1 + int64(derive(seed, name, 0x7024)%uint64(info.Size()-1))
			}
		} else if off < 0 {
			off = info.Size() + off
		}
		if off < 0 {
			off = 0
		}
		if off >= info.Size() {
			return nil, nil // nothing to cut
		}
		if err := os.Truncate(path, off); err != nil {
			return nil, fmt.Errorf("faultio: truncating %s: %w", name, err)
		}
		return &Action{File: name, Kind: KindTruncate, Offset: off}, nil
	case KindBitFlip:
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("faultio: %w", err)
		}
		if len(data) == 0 {
			return nil, nil
		}
		off := f.Offset
		if !f.OffsetSet {
			off = int64(derive(seed, name, 0xb1f1) % uint64(len(data)))
		} else if off < 0 {
			off = int64(len(data)) + off
		}
		if off < 0 || off >= int64(len(data)) {
			return nil, nil
		}
		data[off] ^= 1 << (derive(seed, name, 0xb172) % 8)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, fmt.Errorf("faultio: rewriting %s: %w", name, err)
		}
		return &Action{File: name, Kind: f.Kind, Offset: off}, nil
	}
	return nil, nil
}
