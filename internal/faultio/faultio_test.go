package faultio

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseSpec(t *testing.T) {
	plan, err := ParseSpec("seed=7;torn:site-*.bin@100;crash#2500;missing:sites.tsv")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 || len(plan.Faults) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Faults[0].Kind != KindTorn || plan.Faults[0].Match != "site-*.bin" ||
		plan.Faults[0].Offset != 100 || !plan.Faults[0].OffsetSet {
		t.Fatalf("torn fault = %+v", plan.Faults[0])
	}
	if plan.Faults[1].Kind != KindCrash || plan.Faults[1].AfterOps != 2500 {
		t.Fatalf("crash fault = %+v", plan.Faults[1])
	}
	if plan.Faults[2].Kind != KindMissing || plan.Faults[2].Match != "sites.tsv" {
		t.Fatalf("missing fault = %+v", plan.Faults[2])
	}
	// Round-trip through String.
	again, err := ParseSpec(plan.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Fatalf("round-trip mismatch:\n%+v\n%+v", plan, again)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, spec := range []string{"", "seed=1", "explode", "torn:[", "crash#-1", "seed=x;torn"} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q should not parse", spec)
		}
	}
}

func TestNilInjectorPassesThrough(t *testing.T) {
	var in *Injector
	var buf bytes.Buffer
	w := in.WrapWriter("a.bin", &buf)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello" {
		t.Fatalf("buf = %q", buf.String())
	}
	if acts, err := in.Corrupt(t.TempDir()); err != nil || acts != nil {
		t.Fatalf("nil injector corrupt = %v, %v", acts, err)
	}
}

func TestTornWriterCutsAtOffset(t *testing.T) {
	plan, err := ParseSpec("torn:a.bin@5")
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	var buf bytes.Buffer
	w := in.WrapWriter("a.bin", &buf)
	// The writer must claim success for every byte.
	for _, chunk := range []string{"abc", "defg", "hij"} {
		n, err := w.Write([]byte(chunk))
		if err != nil || n != len(chunk) {
			t.Fatalf("write %q = %d, %v", chunk, n, err)
		}
	}
	if buf.String() != "abcde" {
		t.Fatalf("persisted %q, want torn prefix \"abcde\"", buf.String())
	}
}

func TestBitFlipFlipsExactlyOneBit(t *testing.T) {
	plan, err := ParseSpec("bitflip:a.bin@2")
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	var buf bytes.Buffer
	w := in.WrapWriter("a.bin", &buf)
	payload := []byte{0, 0, 0, 0}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	if len(got) != 4 || got[0] != 0 || got[1] != 0 || got[3] != 0 {
		t.Fatalf("persisted % x", got)
	}
	if b := got[2]; b == 0 || b&(b-1) != 0 {
		t.Fatalf("byte 2 = %08b, want exactly one bit set", b)
	}
	if payload[2] != 0 {
		t.Fatal("caller's buffer was mangled")
	}
}

func TestCrashDropsEverythingAfterK(t *testing.T) {
	plan, err := ParseSpec("crash#2")
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	var a, b bytes.Buffer
	wa := in.WrapWriter("a.bin", &a)
	wb := in.WrapWriter("b.bin", &b)
	wa.Write([]byte("one"))   // op 1: persists
	wb.Write([]byte("two"))   // op 2: persists
	wa.Write([]byte("three")) // op 3: lost
	wb.Write([]byte("four"))  // op 4: lost
	if !in.Crashed() {
		t.Fatal("injector did not crash")
	}
	if a.String() != "one" || b.String() != "two" {
		t.Fatalf("persisted a=%q b=%q", a.String(), b.String())
	}
}

func TestCreateMissingFileNeverAppears(t *testing.T) {
	dir := t.TempDir()
	plan, err := ParseSpec("missing:gone.bin")
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	f, err := in.Create(filepath.Join(dir, "gone.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone.bin")); !os.IsNotExist(err) {
		t.Fatalf("file exists: %v", err)
	}
	// Non-matching files are created normally.
	g, err := in.Create(filepath.Join(dir, "kept.bin"))
	if err != nil {
		t.Fatal(err)
	}
	g.Write([]byte("ok"))
	g.Close()
	data, err := os.ReadFile(filepath.Join(dir, "kept.bin"))
	if err != nil || string(data) != "ok" {
		t.Fatalf("kept.bin = %q, %v", data, err)
	}
}

func TestCorruptPostHocDeterministic(t *testing.T) {
	mk := func() string {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, "a.bin"), bytes.Repeat([]byte("x"), 100), 0o644)
		os.WriteFile(filepath.Join(dir, "b.bin"), bytes.Repeat([]byte("y"), 100), 0o644)
		return dir
	}
	plan, err := ParseSpec("seed=9;truncate:a.bin;bitflip:b.bin")
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := mk(), mk()
	acts1, err := New(plan).Corrupt(d1)
	if err != nil {
		t.Fatal(err)
	}
	acts2, err := New(plan).Corrupt(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(acts1, acts2) {
		t.Fatalf("actions differ:\n%v\n%v", acts1, acts2)
	}
	if len(acts1) != 2 {
		t.Fatalf("actions = %v", acts1)
	}
	f1, _ := os.ReadFile(filepath.Join(d1, "a.bin"))
	f2, _ := os.ReadFile(filepath.Join(d2, "a.bin"))
	if !bytes.Equal(f1, f2) || len(f1) >= 100 {
		t.Fatalf("truncate not deterministic: %d vs %d bytes", len(f1), len(f2))
	}
}

func TestCorruptExplicitOffsets(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.bin")
	os.WriteFile(path, []byte("0123456789"), 0o644)
	plan, err := ParseSpec("truncate:a.bin@-3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(plan).Corrupt(dir); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "0123456" {
		t.Fatalf("data = %q", data)
	}
}
