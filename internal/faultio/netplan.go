package faultio

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file is the network half of the fault model: where faultio.Plan
// describes what a disk ends up holding, NetPlan describes what a fleet's
// network delivers — requests dropped on the floor, duplicated by a
// retransmitting middlebox, answered with gateway 5xxs, delayed, or cut
// off wholesale by a partition window. The deterministic discipline is the
// same: every choice derives from the plan seed and the decision's stable
// identity (instance, operation, decision ordinal), never from wall clock
// or map order, so a plan replays identically across runs.
//
// internal/simnet interposes a NetPlan between fleetclient and planserver;
// nothing here touches real sockets.

// NetKind enumerates the network fault classes.
type NetKind int

// Network fault kinds.
const (
	// NetDrop loses a request before it reaches the daemon: the client
	// observes a transport error after a timeout.
	NetDrop NetKind = iota + 1
	// NetDup delivers a request twice back to back — the classic
	// retransmission race. The duplicate must be harmless (uploads are
	// idempotent per instance).
	NetDup
	// NetStale redelivers the instance's previous request immediately
	// before the current one — an old retransmission surfacing late. The
	// fresh request is delivered last, so last-write-wins must converge.
	NetStale
	// NetDelay holds a request for a fixed extra latency before
	// delivering it.
	NetDelay
	// NetErr5xx answers with a synthesized 503 without delivering — a
	// loaded or misrouting gateway in front of the daemon.
	NetErr5xx
	// NetPartition makes a contiguous range of instances unreachable for
	// a time window.
	NetPartition
)

func (k NetKind) String() string {
	switch k {
	case NetDrop:
		return "drop"
	case NetDup:
		return "dup"
	case NetStale:
		return "stale"
	case NetDelay:
		return "delay"
	case NetErr5xx:
		return "err5xx"
	case NetPartition:
		return "partition"
	}
	return fmt.Sprintf("NetKind(%d)", int(k))
}

// NetFault is one planned network fault.
type NetFault struct {
	Kind NetKind
	// Op restricts a percentage fault to one operation kind ("upload",
	// "fetch"); empty matches every operation. Ignored by NetPartition.
	Op string
	// Pct is the percentage of matching decisions the fault fires on,
	// drawn deterministically from the plan seed. Ignored by NetPartition.
	Pct int
	// Delay is the extra latency of a NetDelay fault.
	Delay time.Duration
	// Prefix, First, Last name the partitioned instance range
	// "<Prefix>-<First>..<Prefix>-<Last>" (inclusive).
	Prefix      string
	First, Last int
	// Start and Dur bound the partition window [Start, Start+Dur).
	Start, Dur time.Duration
}

func (f NetFault) String() string {
	if f.Kind == NetPartition {
		return fmt.Sprintf("partition:%s-%d..%d@t=%s/%s",
			f.Prefix, f.First, f.Last, f.Start, f.Dur)
	}
	s := f.Kind.String()
	if f.Op != "" {
		s += ":" + f.Op
	}
	s += "%" + strconv.Itoa(f.Pct)
	if f.Kind == NetDelay {
		s += "@" + f.Delay.String()
	}
	return s
}

// NetPlan is a complete, replayable network fault plan. A nil *NetPlan
// injects nothing.
type NetPlan struct {
	Seed   int64
	Faults []NetFault
}

// String renders the plan back into ParseNetSpec's grammar.
func (p *NetPlan) String() string {
	if p == nil {
		return ""
	}
	parts := []string{"seed=" + strconv.FormatInt(p.Seed, 10)}
	for _, f := range p.Faults {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, ";")
}

// ParseNetSpec parses a network fault plan from its flag syntax:
//
//	spec      = part *( ";" part )
//	part      = "seed=N" | partition | pct-fault
//	partition = "partition:" prefix "-" lo ".." hi "@t=" start "/" dur
//	pct-fault = kind [ ":" op ] "%" pct [ "@" delay ]
//	kind      = "drop" | "dup" | "stale" | "delay" | "err5xx"
//	op        = "upload" | "fetch"
//
// Durations use Go syntax ("40s", "250ms"). Examples:
//
//	"seed=9;partition:inst-3..7@t=40s/20s;drop:upload%5"
//	"dup:upload%10;delay:fetch%25@250ms;err5xx%2"
func ParseNetSpec(spec string) (*NetPlan, error) {
	p := &NetPlan{Seed: 1}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultio: bad seed %q: %w", v, err)
			}
			p.Seed = seed
			continue
		}
		f, err := parseNetFault(part)
		if err != nil {
			return nil, err
		}
		p.Faults = append(p.Faults, f)
	}
	if len(p.Faults) == 0 {
		return nil, fmt.Errorf("faultio: net spec %q plans no faults", spec)
	}
	return p, nil
}

func parseNetFault(s string) (NetFault, error) {
	var f NetFault
	if rest, ok := strings.CutPrefix(s, "partition:"); ok {
		return parsePartition(s, rest)
	}
	rest := s
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		d, err := time.ParseDuration(rest[i+1:])
		if err != nil || d < 0 {
			return f, fmt.Errorf("faultio: bad delay in %q", s)
		}
		f.Delay = d
		rest = rest[:i]
	}
	i := strings.IndexByte(rest, '%')
	if i < 0 {
		return f, fmt.Errorf("faultio: net fault %q has no percentage", s)
	}
	pct, err := strconv.Atoi(rest[i+1:])
	if err != nil || pct < 0 || pct > 100 {
		return f, fmt.Errorf("faultio: bad percentage in %q", s)
	}
	f.Pct = pct
	kind, op, _ := strings.Cut(rest[:i], ":")
	switch kind {
	case "drop":
		f.Kind = NetDrop
	case "dup":
		f.Kind = NetDup
	case "stale":
		f.Kind = NetStale
	case "delay":
		f.Kind = NetDelay
	case "err5xx":
		f.Kind = NetErr5xx
	default:
		return f, fmt.Errorf("faultio: unknown net fault kind %q in %q", kind, s)
	}
	switch op {
	case "", "upload", "fetch":
		f.Op = op
	default:
		return f, fmt.Errorf("faultio: unknown operation %q in %q (want upload or fetch)", op, s)
	}
	if f.Kind == NetDelay && f.Delay == 0 {
		return f, fmt.Errorf("faultio: delay fault %q needs @duration", s)
	}
	return f, nil
}

func parsePartition(whole, s string) (NetFault, error) {
	f := NetFault{Kind: NetPartition}
	rangePart, window, ok := strings.Cut(s, "@t=")
	if !ok {
		return f, fmt.Errorf("faultio: partition %q has no @t=start/dur window", whole)
	}
	lo, hi, ok := strings.Cut(rangePart, "..")
	if !ok {
		return f, fmt.Errorf("faultio: partition %q has no lo..hi instance range", whole)
	}
	dash := strings.LastIndexByte(lo, '-')
	if dash <= 0 {
		return f, fmt.Errorf("faultio: partition range %q wants prefix-lo..hi", rangePart)
	}
	f.Prefix = lo[:dash]
	first, err := strconv.Atoi(lo[dash+1:])
	if err != nil || first < 0 {
		return f, fmt.Errorf("faultio: bad partition range start in %q", whole)
	}
	// The upper bound may repeat the prefix ("inst-3..inst-7") or not
	// ("inst-3..7").
	hi = strings.TrimPrefix(hi, f.Prefix+"-")
	last, err := strconv.Atoi(hi)
	if err != nil || last < first {
		return f, fmt.Errorf("faultio: bad partition range end in %q", whole)
	}
	f.First, f.Last = first, last
	start, dur, ok := strings.Cut(window, "/")
	if !ok {
		return f, fmt.Errorf("faultio: partition window %q wants start/dur", window)
	}
	if f.Start, err = time.ParseDuration(start); err != nil || f.Start < 0 {
		return f, fmt.Errorf("faultio: bad partition start in %q", whole)
	}
	if f.Dur, err = time.ParseDuration(dur); err != nil || f.Dur <= 0 {
		return f, fmt.Errorf("faultio: bad partition duration in %q", whole)
	}
	return f, nil
}

// Partitioned reports whether instance is cut off at instant at. Instance
// names follow the "<prefix>-<index>" convention the partition ranges use;
// other names never match.
func (p *NetPlan) Partitioned(instance string, at time.Duration) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind != NetPartition {
			continue
		}
		if at < f.Start || at >= f.Start+f.Dur {
			continue
		}
		idx, ok := strings.CutPrefix(instance, f.Prefix+"-")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(idx)
		if err != nil {
			continue
		}
		if n >= f.First && n <= f.Last {
			return true
		}
	}
	return false
}

// PartitionsClearBy returns the earliest instant at which every partition
// window has healed (zero when the plan has none). Simulations schedule
// their recovery rounds after it.
func (p *NetPlan) PartitionsClearBy() time.Duration {
	if p == nil {
		return 0
	}
	var clear time.Duration
	for _, f := range p.Faults {
		if f.Kind == NetPartition && f.Start+f.Dur > clear {
			clear = f.Start + f.Dur
		}
	}
	return clear
}

// Partitions returns the plan's partition windows.
func (p *NetPlan) Partitions() []NetFault {
	if p == nil {
		return nil
	}
	var out []NetFault
	for _, f := range p.Faults {
		if f.Kind == NetPartition {
			out = append(out, f)
		}
	}
	return out
}

// Draw decides whether a percentage fault of the given kind fires for the
// n-th decision of (instance, op), and returns the matched fault. The draw
// derives from the plan seed and the decision identity alone: a given
// (seed, kind, op, instance, n) always decides the same way, in any run,
// on any host.
func (p *NetPlan) Draw(kind NetKind, op, instance string, n uint64) (NetFault, bool) {
	if p == nil {
		return NetFault{}, false
	}
	for _, f := range p.Faults {
		if f.Kind != kind || f.Pct == 0 {
			continue
		}
		if f.Op != "" && f.Op != op {
			continue
		}
		id := kind.String() + "|" + op + "|" + instance + "|" + strconv.FormatUint(n, 10)
		if derive(p.Seed, id, 0x4e37)%100 < uint64(f.Pct) {
			return f, true
		}
	}
	return NetFault{}, false
}
