package lucene

import (
	"testing"
	"time"

	"polm2/internal/core"
)

// TestDiagProfile prints profiling metrics for calibration and checks the
// Table 1 shape for Lucene: 2 instrumented sites, 2 generations, 2
// conflicts.
func TestDiagProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling run skipped in -short mode")
	}
	start := time.Now()
	res, err := core.ProfileApp(New(), Workload, core.ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	t.Logf("wall=%v cycles=%d snaps=%d", time.Since(start).Round(time.Millisecond), res.GCCycles, len(res.Snapshots))
	t.Logf("instrumented=%d usedGens=%d conflicts=%d unresolved=%d",
		p.InstrumentedSites(), p.UsedGenerations(), p.Conflicts, p.Unresolved)
	// Table 1 regression: 2 instrumented sites (of the expert's 8), 2
	// generations, 2 conflicts.
	if got := p.InstrumentedSites(); got != 2 {
		t.Errorf("instrumented sites = %d, want 2", got)
	}
	if got := p.UsedGenerations(); got != 2 {
		t.Errorf("used generations = %d, want 2", got)
	}
	if p.Conflicts != 2 {
		t.Errorf("conflicts = %d, want 2", p.Conflicts)
	}
	if p.Unresolved != 0 {
		t.Errorf("unresolved = %d, want 0", p.Unresolved)
	}
	for _, s := range p.Sites {
		b := s.Buckets
		if len(b) > 16 {
			b = b[:16]
		}
		t.Logf("  site %-60s gen=%d n=%-8d buckets[:16]=%v", s.Trace, s.Gen, s.Allocated, b)
	}
	for _, c := range p.Calls {
		t.Logf("  call %-40s gen=%d", c.Loc, c.Gen)
	}
	for _, a := range p.Allocs {
		t.Logf("  alloc %-40s gen=%d direct=%v", a.Loc, a.Gen, a.Direct)
	}
}

// TestDiagProduction compares collectors on the Lucene workload.
func TestDiagProduction(t *testing.T) {
	if testing.Short() {
		t.Skip("production run skipped in -short mode")
	}
	app := New()
	prof, err := core.ProfileApp(app, Workload, core.ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	manual, err := app.ManualProfile(Workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		collector string
		plan      core.PlanKind
	}{
		{core.CollectorG1, core.PlanNone},
		{core.CollectorNG2C, core.PlanManual},
		{core.CollectorNG2C, core.PlanPOLM2},
	} {
		profile := prof.Profile
		switch r.plan {
		case core.PlanNone:
			profile = nil
		case core.PlanManual:
			profile = manual
		}
		res, err := core.RunApp(app, Workload, r.collector, r.plan, profile, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-5s %-7s pauses=%-5d p50=%-12v p99=%-12v max=%-12v ops=%-8d maxMem=%dMB gcs=%d",
			r.collector, r.plan, res.WarmPauses.Len(),
			res.WarmPauses.Percentile(50), res.WarmPauses.Percentile(99),
			res.WarmPauses.Max(), res.WarmOps, res.MaxMemoryBytes>>20, res.GCCycles)
	}
}
