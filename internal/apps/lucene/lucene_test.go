package lucene

import (
	"testing"
	"time"

	"polm2/internal/core"
)

func TestBasics(t *testing.T) {
	app := New()
	if app.Name() != "Lucene" {
		t.Fatalf("Name = %q", app.Name())
	}
	if got := app.Workloads(); len(got) != 1 || got[0] != Workload {
		t.Fatalf("Workloads = %v", got)
	}
}

func TestUnknownWorkloadFails(t *testing.T) {
	app := New()
	if _, err := core.RunApp(app, "nope", core.CollectorG1, core.PlanNone, nil,
		core.RunOptions{Duration: time.Minute}); err == nil {
		t.Fatal("unknown workload should fail")
	}
	if _, err := app.ManualProfile("nope"); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestManualProfileMatchesPaper(t *testing.T) {
	p, err := New().ManualProfile(Workload)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 1: the expert instrumented 8 sites, used 2 generations, and
	// found no conflicts.
	if got := p.InstrumentedSites(); got != 8 {
		t.Errorf("manual sites = %d, want 8", got)
	}
	if got := p.UsedGenerations(); got != 2 {
		t.Errorf("manual generations = %d, want 2", got)
	}
	if p.Conflicts != 0 {
		t.Errorf("manual conflicts = %d, want 0", p.Conflicts)
	}
	// The misplacement: the shared pools are pretenured directly.
	foundDirectPool := 0
	for _, a := range p.Allocs {
		if (a.Loc == "PostingsPool.get:2" || a.Loc == "BufferPool.get:2") && a.Direct {
			foundDirectPool++
		}
	}
	if foundDirectPool != 2 {
		t.Errorf("expected both pools pretenured directly, found %d", foundDirectPool)
	}
}

// TestManualMisplacementHurts verifies the paper's §5.4.1 observation: the
// expert's direct pool annotations drag transient search objects into the
// old generations, so POLM2's pauses beat the manual ones.
func TestManualMisplacementHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("run skipped in -short mode")
	}
	app := New()
	prof, err := core.ProfileApp(app, Workload, core.ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	manual, err := app.ManualProfile(Workload)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.RunOptions{Duration: 10 * time.Minute, Warmup: 2 * time.Minute}
	polm2Run, err := core.RunApp(app, Workload, core.CollectorNG2C, core.PlanPOLM2, prof.Profile, opts)
	if err != nil {
		t.Fatal(err)
	}
	manualRun, err := core.RunApp(app, Workload, core.CollectorNG2C, core.PlanManual, manual, opts)
	if err != nil {
		t.Fatal(err)
	}
	if polm2Run.WarmPauses.Percentile(99) >= manualRun.WarmPauses.Percentile(99) {
		t.Errorf("POLM2 p99 %v should beat misplaced manual %v",
			polm2Run.WarmPauses.Percentile(99), manualRun.WarmPauses.Percentile(99))
	}
}
