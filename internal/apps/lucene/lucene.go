// Package lucene models Apache Lucene 6.1.0 maintaining an in-memory text
// index over a Wikipedia-scale corpus — the paper's second evaluation
// platform (§5.2.2).
//
// The workload is write-intensive by design ("a worst case scenario for GC
// pauses"): 20000 document updates and 5000 searches per second. Updates
// parse documents (transient), then append postings and document buffers to
// the current in-memory segment through two shared pool helpers; segments
// are flushed periodically and merged away later, so everything reached
// through the pools on the update path is middle-lived. Searches loop over
// the corpus's top words, allocating transient queries, scorers and result
// buffers — through the same two pool helpers, which creates the two
// allocation-path conflicts the paper reports for Lucene (Table 1).
//
// The merge path allocates a handful of long-lived per-segment structures
// (field infos, term dictionary, norms, doc values, bloom, metadata).
// Merges are rare, so POLM2 correctly leaves those sites uninstrumented;
// the paper's expert annotated them anyway — Table 1's "2/8" instrumented
// sites — and pretenured the two shared pools directly without noticing the
// search-path conflicts ("2/0" conflicts), which is why POLM2 outperforms
// manual NG2C on Lucene (§5.4.1).
package lucene

import (
	"fmt"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/core"
	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/workload"
)

// Workload is the single Lucene workload name.
const Workload = "default"

// Offered load (§5.2.2): 20000 updates + 5000 searches per second, scaled
// by core.OpScale.
const (
	totalOpsPerSecond = 25000.0 / core.OpScale
	updateFraction    = 0.8
)

// Model tunables (simulated bytes; heap is 1/64 of the paper's 12 GB).
const (
	// Update path: transient parse buffers, then retained postings and
	// document buffer through the shared pools.
	docParseSize   = 2048
	tokenizeSize   = 1024
	termVectorSize = 512
	postingsSize   = 320
	docBufferSize  = 192
	// recentDocSize is the per-update entry of the recently-updated
	// documents cache: roughly half the entries are dropped on arrival
	// (duplicate updates), the rest live a couple of GC cycles. The mix
	// keeps the site below the Analyzer's old-fraction threshold, so it
	// stays young and keeps survivor copying alive even under POLM2 —
	// the residual pauses of Figure 5(d).
	recentDocSize = 2304
	recentDocKeep = 0.4
	recentDocTTL  = 40 * time.Second
	// Search path: transient query, scorer (via PostingsPool) and
	// result buffer (via BufferPool). The query loop covers the top 500
	// words of the corpus (§5.2.2).
	querySize  = 512
	scorerSize = 1024
	resultSize = 1024
	topWords   = 500
	// Segments: the current segment flushes on a timer; flushed
	// segments merge away after mergeEvery flushes. The merge allocates
	// the six long-lived per-segment structures of the merged segment.
	segmentFlushPeriod = 95 * time.Second
	mergeEvery         = 4
	fieldInfosSize     = 2048
	termDictSize       = 8192
	normsSize          = 4096
	docValuesSize      = 4096
	bloomSize          = 2048
	segMetaSize        = 1024
	// Mutator work per simulated operation (microseconds); one simulated
	// operation is core.OpScale real requests.
	updateWork = 1900
	searchWork = 2300
	mergeWork  = 30000
)

// App is the Lucene model.
type App struct{}

var _ core.App = (*App)(nil)

// New returns the Lucene application model.
func New() *App { return &App{} }

// Name implements core.App.
func (a *App) Name() string { return "Lucene" }

// Workloads implements core.App.
func (a *App) Workloads() []string { return []string{Workload} }

// state is the per-run mutable application state.
type state struct {
	env *core.Env
	th  *jvm.Thread
	rnd *workload.Rand

	segment   *heap.Object   // current in-memory segment (rooted)
	flushed   []*heap.Object // flushed segments awaiting merge (rooted)
	merged    *heap.Object   // last merged segment (rooted)
	recent    []ttlEntry     // recently-updated documents cache (rooted)
	lastFlush time.Duration
	flushes   int
	queryWord int
}

// ttlEntry pairs a rooted object with its expiry instant.
type ttlEntry struct {
	obj    *heap.Object
	expiry time.Duration
}

// Run implements core.App.
func (a *App) Run(env *core.Env, workloadName string) error {
	if workloadName != Workload {
		return fmt.Errorf("lucene: unknown workload %q", workloadName)
	}
	th := env.VM().NewThread("lucene")
	th.Enter("IndexNode", "serve")
	s := &state{env: env, th: th, rnd: env.Rand()}
	if err := s.newSegment(); err != nil {
		return err
	}
	pacer, err := workload.NewPacer(env.Clock(), totalOpsPerSecond)
	if err != nil {
		return err
	}
	for !env.Done() {
		pacer.Await()
		if s.rnd.Float64() < updateFraction {
			if err := s.update(); err != nil {
				return err
			}
		} else {
			if err := s.search(); err != nil {
				return err
			}
		}
		th.ReleaseLocals()
		env.CountOps(1)
	}
	return nil
}

// newSegment opens a fresh in-memory segment. The segment's root buffer is
// allocated through the shared BufferPool, so it shares the pool's
// allocation site with the update and search paths.
func (s *state) newSegment() error {
	s.th.Call(40, "DocumentsWriter", "newSegment")
	s.th.Call(4, "BufferPool", "get")
	obj, err := s.th.Alloc(2, 512)
	s.th.Return()
	s.th.Return()
	if err != nil {
		return err
	}
	if err := s.env.Heap().AddRoot(obj.ID); err != nil {
		return err
	}
	s.segment = obj
	return nil
}

// update is one document update: parse (transient), then postings and a
// document buffer appended to the current segment through the two shared
// pools — the middle-lived side of both conflicts.
func (s *state) update() error {
	th, h := s.th, s.env.Heap()

	th.Call(10, "IndexWriter", "updateDocument")
	// Transient parsing.
	th.Call(3, "DocumentParser", "parse")
	if _, err := th.Alloc(5, s.rnd.SizeAround(docParseSize, 0.3)); err != nil {
		return err
	}
	if _, err := th.Alloc(7, s.rnd.SizeAround(tokenizeSize, 0.3)); err != nil {
		return err
	}
	th.Return()
	if _, err := th.Alloc(12, termVectorSize); err != nil {
		return err
	}

	// Retained index data through the shared pools.
	th.Call(14, "PostingsPool", "get")
	postings, err := th.Alloc(2, s.rnd.SizeAround(postingsSize, 0.25))
	th.Return()
	if err != nil {
		return err
	}
	th.Call(16, "BufferPool", "get")
	docBuf, err := th.Alloc(2, docBufferSize)
	th.Return()
	if err != nil {
		return err
	}
	th.Return()

	if err := h.Link(s.segment.ID, postings.ID); err != nil {
		return err
	}
	if err := h.Link(s.segment.ID, docBuf.ID); err != nil {
		return err
	}

	// Recently-updated documents cache: half the entries are dropped
	// immediately, the rest expire after a couple of GC cycles.
	entry, err := th.Alloc(18, recentDocSize)
	if err != nil {
		return err
	}
	if s.rnd.Float64() < recentDocKeep {
		if err := h.AddRoot(entry.ID); err != nil {
			return err
		}
		s.recent = append(s.recent, ttlEntry{obj: entry, expiry: s.env.Now() + recentDocTTL})
	}
	now := s.env.Now()
	for len(s.recent) > 0 && s.recent[0].expiry <= now {
		victim := s.recent[0]
		s.recent = s.recent[1:]
		if err := h.RemoveRoot(victim.obj.ID); err != nil {
			return err
		}
	}
	th.Work(updateWork)

	if s.env.Now()-s.lastFlush >= segmentFlushPeriod {
		if err := s.flush(); err != nil {
			return err
		}
	}
	return nil
}

// flush seals the current segment and opens a new one; every mergeEvery
// flushes, the sealed segments are merged.
func (s *state) flush() error {
	s.flushed = append(s.flushed, s.segment)
	s.flushes++
	s.lastFlush = s.env.Now()
	if err := s.newSegment(); err != nil {
		return err
	}
	if s.flushes%mergeEvery == 0 {
		return s.merge()
	}
	return nil
}

// merge combines the sealed segments: their postings die en masse and the
// merged segment's long-lived structures are allocated — the six rare
// allocation sites the paper's expert annotated but POLM2 correctly skips.
func (s *state) merge() error {
	th, h := s.th, s.env.Heap()
	th.Call(50, "SegmentMerger", "merge")

	holder, err := th.Alloc(4, 512)
	if err != nil {
		return err
	}
	parts := []struct {
		line int
		size uint32
	}{
		{10, fieldInfosSize},
		{12, termDictSize},
		{14, normsSize},
		{16, docValuesSize},
		{18, bloomSize},
		{20, segMetaSize},
	}
	if err := h.AddRoot(holder.ID); err != nil {
		return err
	}
	for _, part := range parts {
		obj, err := th.Alloc(part.line, part.size)
		if err != nil {
			return err
		}
		if err := h.Link(holder.ID, obj.ID); err != nil {
			return err
		}
	}
	th.Return()

	// The merged-away segments die here, en masse.
	for _, seg := range s.flushed {
		if err := h.RemoveRoot(seg.ID); err != nil {
			return err
		}
	}
	s.flushed = s.flushed[:0]
	if s.merged != nil {
		if err := h.RemoveRoot(s.merged.ID); err != nil {
			return err
		}
	}
	s.merged = holder
	th.Work(mergeWork)
	return nil
}

// search is one query over the corpus's hot words: a transient query
// object, a scorer through PostingsPool and a result buffer through
// BufferPool — the short-lived side of both conflicts.
func (s *state) search() error {
	th := s.th
	s.queryWord = (s.queryWord + 1) % topWords

	th.Call(20, "IndexSearcher", "search")
	if _, err := th.Alloc(5, querySize); err != nil {
		return err
	}
	th.Call(7, "PostingsPool", "get")
	if _, err := th.Alloc(2, s.rnd.SizeAround(scorerSize, 0.3)); err != nil {
		return err
	}
	th.Return()
	th.Call(9, "BufferPool", "get")
	if _, err := th.Alloc(2, s.rnd.SizeAround(resultSize, 0.3)); err != nil {
		return err
	}
	th.Return()
	th.Return()
	th.Work(searchWork)
	return nil
}

// ManualProfile implements core.App: the expert's hand-written annotations
// for Lucene (§5.4.1, Table 1). The expert annotated eight sites — the two
// hot pool helpers plus the six per-merge structures — directly, without
// realizing the pools are also used by the transient search path: the
// "misplaced manual code changes" that make manual NG2C worse than POLM2 on
// Lucene.
func (a *App) ManualProfile(workloadName string) (*analyzer.Profile, error) {
	if workloadName != Workload {
		return nil, fmt.Errorf("lucene: unknown workload %q", workloadName)
	}
	p := &analyzer.Profile{
		App:         "Lucene",
		Workload:    workloadName,
		Generations: 1,
		Conflicts:   0, // the expert saw none (Table 1: 2/0)
		Allocs: []analyzer.AllocDirective{
			{Loc: "PostingsPool.get:2", Gen: 1, Direct: true}, // drags scorers along
			{Loc: "BufferPool.get:2", Gen: 1, Direct: true},   // drags result buffers along
			{Loc: "SegmentMerger.merge:10", Gen: 1, Direct: true},
			{Loc: "SegmentMerger.merge:12", Gen: 1, Direct: true},
			{Loc: "SegmentMerger.merge:14", Gen: 1, Direct: true},
			{Loc: "SegmentMerger.merge:16", Gen: 1, Direct: true},
			{Loc: "SegmentMerger.merge:18", Gen: 1, Direct: true},
			{Loc: "SegmentMerger.merge:20", Gen: 1, Direct: true},
		},
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("lucene: manual profile: %w", err)
	}
	return p, nil
}
