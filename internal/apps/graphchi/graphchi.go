// Package graphchi models GraphChi 0.2.2 running iterative graph
// computations over a Twitter-2010-scale power-law graph — the paper's
// third evaluation platform (§5.2.3).
//
// GraphChi processes the graph in intervals: it computes a memory budget,
// loads a batch of vertices and their edges into memory, runs the update
// function over the batch, writes results back and drops the batch —
// middle-lived data dying en masse, the ideal pretenuring case. Per-update
// scratch (messages, accumulators) is transient.
//
// Nine allocation sites build each batch (vertex array, in/out edges,
// vertex and edge values, degrees, adjacency index, shard buffers through
// the shared ChunkPool, and vertex objects); the compute path draws its
// scratch buffers through the same ChunkPool, which is the one
// allocation-path conflict POLM2 detects and the paper's expert missed
// (Table 1: 9/9 sites, 1/0 conflicts). Two workloads match the paper: page
// rank (PR) and connected components (CC).
package graphchi

import (
	"fmt"

	"polm2/internal/analyzer"
	"polm2/internal/core"
	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/workload"
)

// Workload names (§5.2.3).
const (
	WorkloadPR = "PR"
	WorkloadCC = "CC"
)

// Model tunables. GraphChi is throughput-oriented: there is no pacer; the
// engine processes batches as fast as the simulated CPU allows.
const (
	// batchBudgetBytes is the memory budget per interval (GraphChi
	// computes one from available memory; a quarter of the scaled heap).
	batchBudgetBytes = 48 << 20
	// chunkSize is the unit of batch loading: one simulated chunk stands
	// for core.OpScale real allocation units.
	chunkSize = 24576
	// loadWorkPerChunk and computeWorkPerChunk are mutator microseconds.
	loadWorkPerChunk    = 400
	computeWorkPerChunk = 20000
	// scratchSize is the transient compute scratch drawn from ChunkPool
	// per compute step.
	scratchSize = 2048
	// messageSize is the transient per-step message buffer.
	messageSize = 26624
	// memoSize is the per-step vertex-state memo: half the memos are
	// dropped immediately, the rest live for a couple of GC cycles in a
	// bounded queue. The mixed lifetime keeps the site young under the
	// Analyzer's thresholds, preserving the survivor copying behind the
	// residual POLM2 pauses of Figures 5(e)/(f).
	memoSize  = 2048
	memoKeep  = 0.4
	memoQueue = 2048
	// updatesPerChunk is how many simulated vertex updates one chunk's
	// compute step performs (throughput accounting).
	updatesPerChunk = 48
)

// workloadParams differentiates PR and CC.
type workloadParams struct {
	// subIterations is how many times the update function sweeps a
	// loaded batch before it is dropped (PR iterates more).
	subIterations int
	// valueScale inflates the vertex/edge value sizes (PR carries
	// double-precision ranks; CC carries integer labels).
	valueScale uint32
}

func params(workloadName string) (workloadParams, error) {
	switch workloadName {
	case WorkloadPR:
		return workloadParams{subIterations: 3, valueScale: 2}, nil
	case WorkloadCC:
		return workloadParams{subIterations: 2, valueScale: 1}, nil
	default:
		return workloadParams{}, fmt.Errorf("graphchi: unknown workload %q", workloadName)
	}
}

// App is the GraphChi model.
type App struct{}

var _ core.App = (*App)(nil)

// New returns the GraphChi application model.
func New() *App { return &App{} }

// Name implements core.App.
func (a *App) Name() string { return "GraphChi" }

// Workloads implements core.App.
func (a *App) Workloads() []string { return []string{WorkloadCC, WorkloadPR} }

// loadSite describes one of the batch-building allocation sites.
type loadSite struct {
	method string
	line   int
	// share is the site's fraction of the batch budget.
	share float64
	// pooled routes the allocation through the shared ChunkPool helper.
	pooled bool
}

// batchSites are the nine allocation sites of §5.2.3's loading phase.
var batchSites = []loadSite{
	{method: "loadVertices", line: 10, share: 0.12},
	{method: "loadInEdges", line: 12, share: 0.22},
	{method: "loadOutEdges", line: 14, share: 0.22},
	{method: "loadVertexValues", line: 16, share: 0.10},
	{method: "loadEdgeValues", line: 18, share: 0.14},
	{method: "loadDegreeData", line: 20, share: 0.06},
	{method: "loadAdjIndex", line: 22, share: 0.05},
	{method: "loadShards", line: 24, share: 0.06, pooled: true},
	{method: "loadVertexObjects", line: 26, share: 0.03},
}

// Run implements core.App.
func (a *App) Run(env *core.Env, workloadName string) error {
	p, err := params(workloadName)
	if err != nil {
		return err
	}
	th := env.VM().NewThread("graphchi")
	th.Enter("GraphChiEngine", "run")
	rnd := env.Rand()

	var memos []*heap.Object
	for !env.Done() {
		batch, chunks, err := loadBatch(env, th, rnd, p)
		if err != nil {
			return err
		}
		for sub := 0; sub < p.subIterations && !env.Done(); sub++ {
			if err := computeSweep(env, th, rnd, chunks, &memos); err != nil {
				return err
			}
		}
		// The interval ends: the whole batch dies en masse.
		if err := env.Heap().RemoveRoot(batch.ID); err != nil {
			return err
		}
		th.ReleaseLocals()
	}
	return nil
}

// loadBatch builds one interval's in-memory subgraph under the memory
// budget, returning the rooted batch holder and the chunk count.
func loadBatch(env *core.Env, th *jvm.Thread, rnd *workload.Rand, p workloadParams) (*heap.Object, int, error) {
	h := env.Heap()
	th.Call(5, "MemoryShard", "loadSubgraph")
	// The batch holder is itself a pooled shard buffer.
	th.Call(3, "ChunkPool", "alloc")
	holder, err := th.Alloc(2, 512)
	th.Return()
	if err != nil {
		return nil, 0, err
	}
	if err := h.AddRoot(holder.ID); err != nil {
		return nil, 0, err
	}

	chunks := 0
	for _, site := range batchSites {
		bytes := uint64(float64(batchBudgetBytes) * site.share)
		size := uint32(chunkSize)
		if site.method == "loadVertexValues" || site.method == "loadEdgeValues" {
			size *= p.valueScale
		}
		// One call per site loads the whole array: a single hoisted
		// setGeneration at this call site covers every chunk the loop
		// below allocates (§4.4's motivating case).
		th.Call(site.line, "MemoryShard", site.method)
		for allocated := uint64(0); allocated+uint64(size) <= bytes; allocated += uint64(size) {
			var chunk *heap.Object
			var err error
			if site.pooled {
				th.Call(3, "ChunkPool", "alloc")
				chunk, err = th.Alloc(2, size)
				th.Return()
			} else {
				chunk, err = th.Alloc(2, size)
			}
			if err != nil {
				return nil, 0, err
			}
			if err := h.Link(holder.ID, chunk.ID); err != nil {
				return nil, 0, err
			}
			chunks++
			th.Work(loadWorkPerChunk)
			if chunks%64 == 0 {
				th.ReleaseLocals()
			}
		}
		th.Return()
	}
	th.Return()
	th.ReleaseLocals()
	return holder, chunks, nil
}

// computeSweep runs the update function over the loaded batch once,
// allocating transient scratch through the shared ChunkPool (the
// short-lived side of the conflict), message buffers, and medium-lived
// vertex-state memos.
func computeSweep(env *core.Env, th *jvm.Thread, rnd *workload.Rand, chunks int, memos *[]*heap.Object) error {
	h := env.Heap()
	th.Call(7, "GraphChiEngine", "execUpdates")
	for i := 0; i < chunks && !env.Done(); i++ {
		th.Call(4, "ChunkPool", "alloc")
		if _, err := th.Alloc(2, scratchSize); err != nil {
			return err
		}
		th.Return()
		if _, err := th.Alloc(6, rnd.SizeAround(messageSize, 0.3)); err != nil {
			return err
		}
		memo, err := th.Alloc(8, memoSize)
		if err != nil {
			return err
		}
		if rnd.Float64() < memoKeep {
			if err := h.AddRoot(memo.ID); err != nil {
				return err
			}
			*memos = append(*memos, memo)
			if len(*memos) > memoQueue {
				victim := (*memos)[0]
				*memos = (*memos)[1:]
				if err := h.RemoveRoot(victim.ID); err != nil {
					return err
				}
			}
		}
		th.Work(computeWorkPerChunk)
		env.CountOps(updatesPerChunk)
		if i%64 == 0 {
			th.ReleaseLocals()
		}
	}
	th.Return()
	th.ReleaseLocals()
	return nil
}

// ManualProfile implements core.App: the expert pretenures all nine batch
// sites — including the shared ChunkPool helper, directly, because the
// compute path's use of the pool went unnoticed (Table 1: 1/0 conflicts).
// Scratch buffers therefore land in the batch generation under manual
// NG2C, which is why POLM2 edges it out on GraphChi (§5.4).
func (a *App) ManualProfile(workloadName string) (*analyzer.Profile, error) {
	if _, err := params(workloadName); err != nil {
		return nil, err
	}
	p := &analyzer.Profile{
		App:         "GraphChi",
		Workload:    workloadName,
		Generations: 1,
		Conflicts:   0,
	}
	for _, site := range batchSites {
		loc := jvm.CodeLoc{Class: "MemoryShard", Method: site.method, Line: 2}
		if site.pooled {
			loc = jvm.CodeLoc{Class: "ChunkPool", Method: "alloc", Line: 2}
		}
		p.Allocs = append(p.Allocs, analyzer.AllocDirective{Loc: loc.String(), Gen: 1, Direct: true})
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("graphchi: manual profile: %w", err)
	}
	return p, nil
}
