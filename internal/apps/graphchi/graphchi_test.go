package graphchi

import (
	"testing"
	"time"

	"polm2/internal/core"
)

func TestBasics(t *testing.T) {
	app := New()
	if app.Name() != "GraphChi" {
		t.Fatalf("Name = %q", app.Name())
	}
	if got := app.Workloads(); len(got) != 2 {
		t.Fatalf("Workloads = %v", got)
	}
	if _, err := params(WorkloadPR); err != nil {
		t.Fatal(err)
	}
	if _, err := params(WorkloadCC); err != nil {
		t.Fatal(err)
	}
	if _, err := params("nope"); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestBatchSitesSumToBudget(t *testing.T) {
	var total float64
	for _, site := range batchSites {
		if site.share <= 0 {
			t.Errorf("site %s has non-positive share", site.method)
		}
		total += site.share
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("batch site shares sum to %v, want ~1.0", total)
	}
	if len(batchSites) != 9 {
		t.Errorf("batch sites = %d, want 9 (Table 1)", len(batchSites))
	}
}

func TestManualProfileMatchesPaper(t *testing.T) {
	app := New()
	for _, wl := range app.Workloads() {
		p, err := app.ManualProfile(wl)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		// Table 1: 9 sites, 2 generations, 0 conflicts found by the
		// expert.
		if got := p.InstrumentedSites(); got != 9 {
			t.Errorf("%s: manual sites = %d, want 9", wl, got)
		}
		if got := p.UsedGenerations(); got != 2 {
			t.Errorf("%s: manual generations = %d, want 2", wl, got)
		}
		if p.Conflicts != 0 {
			t.Errorf("%s: manual conflicts = %d, want 0", wl, p.Conflicts)
		}
	}
}

// TestBatchesDieEnMasse runs a short PR production and verifies that the
// heap does not accumulate batches: the resident object count stays bounded
// across batch boundaries.
func TestBatchesDieEnMasse(t *testing.T) {
	if testing.Short() {
		t.Skip("run skipped in -short mode")
	}
	res, err := core.RunApp(New(), WorkloadPR, core.CollectorG1, core.PlanNone, nil, core.RunOptions{
		Duration: 6 * time.Minute,
		Warmup:   time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmOps == 0 {
		t.Fatal("no vertex updates completed")
	}
	// Two batches plus young space bound committed memory; 192 MiB is
	// the full heap — staying under ~60% shows batches are reclaimed.
	if res.MaxMemoryBytes > 160<<20 {
		t.Fatalf("max memory %d MB suggests batches leak", res.MaxMemoryBytes>>20)
	}
}

// TestPRSlowerThanCCPerSweep checks the workload differentiation: PR
// carries wider values and more sub-iterations than CC.
func TestPRSlowerThanCCPerSweep(t *testing.T) {
	pr, err := params(WorkloadPR)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := params(WorkloadCC)
	if err != nil {
		t.Fatal(err)
	}
	if pr.subIterations <= cc.subIterations {
		t.Error("PR should iterate more than CC")
	}
	if pr.valueScale <= cc.valueScale {
		t.Error("PR should carry wider values than CC")
	}
}
