package graphchi

import (
	"testing"
	"time"

	"polm2/internal/core"
)

// TestDiagProfile prints profiling metrics for calibration and checks the
// Table 1 shape for GraphChi: 9 instrumented sites, 2 generations, 1
// conflict for both PR and CC.
func TestDiagProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling run skipped in -short mode")
	}
	app := New()
	for _, wl := range app.Workloads() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			start := time.Now()
			res, err := core.ProfileApp(app, wl, core.ProfileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			p := res.Profile
			t.Logf("%s: wall=%v cycles=%d snaps=%d", wl, time.Since(start).Round(time.Millisecond), res.GCCycles, len(res.Snapshots))
			t.Logf("%s: instrumented=%d usedGens=%d conflicts=%d unresolved=%d",
				wl, p.InstrumentedSites(), p.UsedGenerations(), p.Conflicts, p.Unresolved)
			// Table 1 regression: 9 instrumented sites, 2
			// generations, 1 conflict for both PR and CC.
			if got := p.InstrumentedSites(); got != 9 {
				t.Errorf("%s: instrumented sites = %d, want 9", wl, got)
			}
			if got := p.UsedGenerations(); got != 2 {
				t.Errorf("%s: used generations = %d, want 2", wl, got)
			}
			if p.Conflicts != 1 {
				t.Errorf("%s: conflicts = %d, want 1", wl, p.Conflicts)
			}
			for _, s := range p.Sites {
				b := s.Buckets
				if len(b) > 12 {
					b = b[:12]
				}
				t.Logf("  site %-60s gen=%d n=%-7d buckets[:12]=%v", s.Trace, s.Gen, s.Allocated, b)
			}
			for _, c := range p.Calls {
				t.Logf("  call %-40s gen=%d", c.Loc, c.Gen)
			}
			for _, a := range p.Allocs {
				t.Logf("  alloc %-40s gen=%d direct=%v", a.Loc, a.Gen, a.Direct)
			}
		})
	}
}

// TestDiagProduction compares collectors on GraphChi PR.
func TestDiagProduction(t *testing.T) {
	if testing.Short() {
		t.Skip("production run skipped in -short mode")
	}
	app := New()
	prof, err := core.ProfileApp(app, WorkloadPR, core.ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	manual, err := app.ManualProfile(WorkloadPR)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		collector string
		plan      core.PlanKind
	}{
		{core.CollectorG1, core.PlanNone},
		{core.CollectorNG2C, core.PlanManual},
		{core.CollectorNG2C, core.PlanPOLM2},
	} {
		profile := prof.Profile
		switch r.plan {
		case core.PlanNone:
			profile = nil
		case core.PlanManual:
			profile = manual
		}
		res, err := core.RunApp(app, WorkloadPR, r.collector, r.plan, profile, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-5s %-7s pauses=%-5d p50=%-12v p99=%-12v max=%-12v ops=%-9d maxMem=%dMB gcs=%d",
			r.collector, r.plan, res.WarmPauses.Len(),
			res.WarmPauses.Percentile(50), res.WarmPauses.Percentile(99),
			res.WarmPauses.Max(), res.WarmOps, res.MaxMemoryBytes>>20, res.GCCycles)
	}
}
