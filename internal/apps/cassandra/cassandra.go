// Package cassandra models Apache Cassandra 2.1.8 under YCSB-style load —
// the paper's first evaluation platform (§5.2.1).
//
// The model reproduces the allocation structure that makes Cassandra hard
// for generational collectors (§1, §2.1 of the paper, and the NG2C paper's
// analysis):
//
//   - writes append cells to the current memtable; everything a memtable
//     references lives until the memtable is flushed, then dies at once —
//     classic middle-lived, en-masse-death data that G1 copies through
//     survivor space and promotes before it dies;
//   - commit-log segments roll over by write volume and are recycled when
//     the memtable they cover is flushed — the same lifetime class;
//   - flushes produce SSTable metadata (bloom filters, index summaries)
//     that lives until the SSTables are compacted away — long-lived;
//   - reads allocate transient request/response objects and populate a
//     bounded row cache — a third lifetime class;
//   - a shared buffer helper (ByteBuffer.allocate) is used by both the
//     write path (memtable lifetime) and the read path (transient),
//     creating exactly the allocation-path conflict of the paper's
//     Listing 1; a second helper (Util.copy) is shared between flush
//     (SSTable lifetime) and compaction scratch buffers; and under
//     read-heavy load the row-cache entry site is additionally reached
//     through a short-lived negative-caching path, producing the third
//     conflict the paper reports for Cassandra-RI (Table 1).
//
// Three workload mixes match §5.2.1: WI (7500 writes / 2500 reads per
// second), WR (5000/5000) and RI (2500/7500).
package cassandra

import (
	"fmt"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/core"
	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/workload"
)

// Workload names (§5.2.1).
const (
	WorkloadWI = "WI"
	WorkloadWR = "WR"
	WorkloadRI = "RI"
)

// totalOpsPerSecond is the offered load in simulated operations per second.
// The paper offers 10000 real operations per second; one simulated
// operation stands for core.OpScale real operations (it allocates the
// aggregate bytes of that many requests), so the simulated rate is
// 10000/OpScale.
const totalOpsPerSecond = 10000.0 / core.OpScale

// Tunables of the model. Sizes are simulated bytes at scale (the default
// geometry is 1/64 of the paper's 12 GB heap / 2 GB young generation).
const (
	// Write path: one transient commit-log record batch plus the
	// retained memtable row (wrapper + cell payload + index entry).
	logRecordSize  = 12288
	rowOverhead    = 128
	cellSize       = 768
	indexEntrySize = 64
	// segmentSize is a commit-log segment object; segments roll every
	// writesPerSegment simulated writes and are recycled at the next
	// flush.
	segmentSize      = 8192
	writesPerSegment = 2000
	// flushPeriod flushes the memtable on a timer (Cassandra's
	// memtable_flush_period): several young-GC cycles, so memtable data
	// survives long enough to be copied and promoted by G1 — the
	// pathology the paper attacks.
	flushPeriod = 48 * time.Second
	// flushesPerCompaction compacts after this many SSTables accumulate.
	flushesPerCompaction = 24
	// SSTable metadata sizes per flush.
	bloomSize   = 3072
	summarySize = 4096
	indexSize   = 2048
	scratchSize = 2048
	// Read path: transient response buffer batch (via the shared
	// ByteBuffer helper), response slice and iterator.
	responseSize = 20480
	sliceSize    = 2048
	iteratorSize = 2048
	// Row cache: entry + value per fill, expired after cacheTTL.
	cacheEntrySize    = 96
	cacheValueSize    = 320
	cacheTTL          = 120 * time.Second
	cacheFillFraction = 0.15
	// Negative caching: under read-heavy load a fraction of misses
	// installs a short-lived tombstone entry through the same
	// allocation site as a regular cache fill.
	tombstoneFraction = 0.10
	tombstoneCapacity = 64
	// Write coordination state: per-write coordinator/hint objects.
	// Most are dropped at once (acknowledged immediately), the rest live
	// a couple of GC cycles awaiting replica acks. The mixed lifetime
	// keeps the site below the Analyzer's old-fraction threshold, so it
	// stays young and keeps survivor copying alive even under POLM2 —
	// the residual pauses of Figure 5(a-c). Because the volume scales
	// with the write rate, the read-intensive mix has the least residual
	// copying and shows the largest relative pause reduction, as in the
	// paper.
	sessionSize = 3584
	sessionKeep = 0.4
	sessionTTL  = 27 * time.Second
	// keySpace is the number of distinct keys, drawn Zipfian.
	keySpace = 1 << 20
	// writeWork and readWork are the mutator costs per simulated
	// operation in engine work units (microseconds); one simulated
	// operation is core.OpScale real requests. Calibrated to keep the
	// server at high utilization under the offered load so GC pauses
	// and barrier taxes show up in throughput, as on the paper's
	// testbed.
	writeWork = 4800
	readWork  = 5400
	flushWork = 40000
)

// App is the Cassandra model.
type App struct{}

var _ core.App = (*App)(nil)

// New returns the Cassandra application model.
func New() *App { return &App{} }

// Name implements core.App.
func (a *App) Name() string { return "Cassandra" }

// Workloads implements core.App.
func (a *App) Workloads() []string {
	return []string{WorkloadWI, WorkloadWR, WorkloadRI}
}

// mix returns the write fraction for a workload.
func mix(workloadName string) (writeFraction float64, err error) {
	switch workloadName {
	case WorkloadWI:
		return 0.75, nil
	case WorkloadWR:
		return 0.50, nil
	case WorkloadRI:
		return 0.25, nil
	default:
		return 0, fmt.Errorf("cassandra: unknown workload %q", workloadName)
	}
}

// state is the per-run mutable application state.
type state struct {
	env  *core.Env
	th   *jvm.Thread
	rnd  *workload.Rand
	zipf *workload.Zipf

	memtable      *heap.Object // current memtable root object
	memtableBytes uint64

	segments      []*heap.Object // commit-log segments since last flush
	segmentWrites uint64

	sstables []*heap.Object // live SSTable holder objects (rooted)
	flushes  int

	cache      []cacheEntry   // row cache entries (rooted, TTL expiry)
	sessions   []cacheEntry   // per-op session state (rooted, TTL expiry)
	tombstones []*heap.Object // FIFO negative-cache entries (rooted)

	lastFlush time.Duration

	negativeCaching bool
}

// cacheEntry pairs a rooted row-cache entry with its expiry instant.
type cacheEntry struct {
	obj    *heap.Object
	expiry time.Duration
}

// Run implements core.App.
func (a *App) Run(env *core.Env, workloadName string) error {
	writeFraction, err := mix(workloadName)
	if err != nil {
		return err
	}
	rnd := env.Rand()
	zipf, err := workload.NewZipf(rnd, 1.2, keySpace)
	if err != nil {
		return err
	}
	th := env.VM().NewThread("cassandra")
	th.Enter("CassandraDaemon", "serve")
	s := &state{
		env:  env,
		th:   th,
		rnd:  rnd,
		zipf: zipf,
		// Negative caching only pays off — and is only enabled —
		// when reads dominate.
		negativeCaching: writeFraction < 0.4,
	}
	if err := s.newMemtable(); err != nil {
		return err
	}

	pacer, err := workload.NewPacer(env.Clock(), totalOpsPerSecond)
	if err != nil {
		return err
	}
	for !env.Done() {
		pacer.Await()
		if rnd.Float64() < writeFraction {
			if err := s.sessionState(); err != nil {
				return err
			}
			if err := s.write(); err != nil {
				return err
			}
		} else {
			if err := s.read(); err != nil {
				return err
			}
		}
		th.ReleaseLocals()
		env.CountOps(1)
	}
	return nil
}

// sessionState allocates the per-write coordinator state and expires old
// sessions.
func (s *state) sessionState() error {
	th, h := s.th, s.env.Heap()
	obj, err := th.Alloc(8, s.rnd.SizeAround(sessionSize, 0.4))
	if err != nil {
		return err
	}
	if s.rnd.Float64() < sessionKeep {
		if err := h.AddRoot(obj.ID); err != nil {
			return err
		}
		jitter := time.Duration(s.rnd.Float64() * float64(sessionTTL))
		s.sessions = append(s.sessions, cacheEntry{obj: obj, expiry: s.env.Now() + sessionTTL/2 + jitter})
	}
	now := s.env.Now()
	for len(s.sessions) > 0 && s.sessions[0].expiry <= now {
		victim := s.sessions[0]
		s.sessions = s.sessions[1:]
		if err := h.RemoveRoot(victim.obj.ID); err != nil {
			return err
		}
	}
	return nil
}

// newMemtable installs a fresh memtable root object, allocated on the flush
// path (CassandraDaemon.serve -> Memtable.create).
func (s *state) newMemtable() error {
	s.th.Call(40, "Memtable", "create")
	obj, err := s.th.Alloc(5, 512)
	s.th.Return()
	if err != nil {
		return err
	}
	if err := s.env.Heap().AddRoot(obj.ID); err != nil {
		return err
	}
	s.memtable = obj
	s.memtableBytes = 0
	return nil
}

// newSegment rolls the commit log to a fresh segment object. Old segments
// stay alive until the covering memtable flushes.
func (s *state) newSegment() error {
	s.th.Call(45, "CommitLog", "newSegment")
	obj, err := s.th.Alloc(9, segmentSize)
	s.th.Return()
	if err != nil {
		return err
	}
	if err := s.env.Heap().AddRoot(obj.ID); err != nil {
		return err
	}
	s.segments = append(s.segments, obj)
	s.segmentWrites = 0
	return nil
}

// write is one YCSB write: commit-log append, then memtable insert through
// the shared buffer helper.
func (s *state) write() error {
	th, h := s.th, s.env.Heap()
	_ = s.zipf.Next() // key choice does not change write-path allocation

	// Commit log: transient record, occasional segment rollover.
	th.Call(10, "CommitLog", "append")
	if _, err := th.Alloc(7, logRecordSize); err != nil {
		return err
	}
	th.Return()
	s.segmentWrites++
	if len(s.segments) == 0 || s.segmentWrites >= writesPerSegment {
		if err := s.newSegment(); err != nil {
			return err
		}
	}

	// Memtable insert: row wrapper, cell payload via the shared
	// ByteBuffer helper (conflict #1), index entry. All linked to the
	// memtable so they die together at flush.
	th.Call(12, "Memtable", "put")
	row, err := th.Alloc(12, rowOverhead)
	if err != nil {
		return err
	}
	th.Call(14, "ByteBuffer", "allocate")
	cell, err := th.Alloc(2, s.rnd.SizeAround(cellSize, 0.25))
	th.Return()
	if err != nil {
		return err
	}
	idx, err := th.Alloc(16, indexEntrySize)
	if err != nil {
		return err
	}
	th.Return()
	if err := h.Link(s.memtable.ID, row.ID); err != nil {
		return err
	}
	if err := h.Link(row.ID, cell.ID); err != nil {
		return err
	}
	if err := h.Link(s.memtable.ID, idx.ID); err != nil {
		return err
	}
	s.memtableBytes += uint64(cell.Size) + uint64(row.Size) + uint64(idx.Size)
	th.Work(writeWork)

	if s.env.Now()-s.lastFlush >= flushPeriod {
		if err := s.flush(); err != nil {
			return err
		}
	}
	return nil
}

// flush writes the memtable out as an SSTable: the memtable's object graph
// and the covered commit-log segments die at once, and long-lived SSTable
// metadata is allocated (bloom filter, index summary, key index via the
// shared Util.copy helper — conflict #2).
func (s *state) flush() error {
	th, h := s.th, s.env.Heap()
	th.Call(50, "Memtable", "flush")
	th.Call(3, "SSTableWriter", "write")

	holder, err := th.Alloc(8, 256)
	if err != nil {
		return err
	}
	bloom, err := th.Alloc(10, bloomSize)
	if err != nil {
		return err
	}
	summary, err := th.Alloc(12, summarySize)
	if err != nil {
		return err
	}
	th.Call(14, "Util", "copy")
	keyIndex, err := th.Alloc(2, indexSize)
	th.Return()
	if err != nil {
		return err
	}
	// Transient serialization scratch through the same shared helper:
	// the short-lived side of conflict #2, exercised on every flush.
	th.Call(16, "Util", "copy")
	if _, err := th.Alloc(2, scratchSize); err != nil {
		return err
	}
	th.Return()
	th.Return()
	th.Return()

	if err := h.AddRoot(holder.ID); err != nil {
		return err
	}
	for _, part := range []*heap.Object{bloom, summary, keyIndex} {
		if err := h.Link(holder.ID, part.ID); err != nil {
			return err
		}
	}
	s.sstables = append(s.sstables, holder)
	s.flushes++
	s.lastFlush = s.env.Now()

	// The old memtable and its commit-log segments die here, en masse.
	if err := h.RemoveRoot(s.memtable.ID); err != nil {
		return err
	}
	for _, seg := range s.segments {
		if err := h.RemoveRoot(seg.ID); err != nil {
			return err
		}
	}
	s.segments = s.segments[:0]
	if err := s.newMemtable(); err != nil {
		return err
	}
	th.Work(flushWork)

	if s.flushes%flushesPerCompaction == 0 {
		return s.compact()
	}
	return nil
}

// compact merges the accumulated SSTables: their metadata dies, one merged
// SSTable's metadata is allocated, plus transient merge buffers through the
// shared Util.copy helper (the transient side of conflict #2).
func (s *state) compact() error {
	th, h := s.th, s.env.Heap()
	th.Call(60, "CompactionTask", "run")

	merged, err := th.Alloc(8, 256)
	if err != nil {
		return err
	}
	if err := h.AddRoot(merged.ID); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		meta, err := th.Alloc(9, summarySize)
		if err != nil {
			return err
		}
		if err := h.Link(merged.ID, meta.ID); err != nil {
			return err
		}
	}
	// Transient merge scratch through the shared helper.
	for range s.sstables {
		th.Call(11, "Util", "copy")
		if _, err := th.Alloc(2, 2048); err != nil {
			return err
		}
		th.Return()
	}
	th.Return()

	for _, old := range s.sstables {
		if err := h.RemoveRoot(old.ID); err != nil {
			return err
		}
	}
	s.sstables = s.sstables[:0]
	s.sstables = append(s.sstables, merged)
	th.Work(flushWork)
	return nil
}

// read is one YCSB read: transient response objects through the shared
// ByteBuffer helper (the transient side of conflict #1), an occasional
// row-cache fill, and — under read-heavy load — a short-lived negative
// cache entry through the same allocation site as a regular fill
// (conflict #3, RI only).
func (s *state) read() error {
	th, h := s.th, s.env.Heap()
	_ = s.zipf.Next()

	th.Call(20, "ReadCommand", "execute")
	th.Call(30, "ByteBuffer", "allocate")
	if _, err := th.Alloc(2, s.rnd.SizeAround(responseSize, 0.3)); err != nil {
		return err
	}
	th.Return()
	th.Call(32, "Slice", "make")
	if _, err := th.Alloc(2, sliceSize); err != nil {
		return err
	}
	th.Return()
	if _, err := th.Alloc(33, iteratorSize); err != nil {
		return err
	}
	if s.negativeCaching && s.rnd.Float64() < tombstoneFraction {
		// Negative caching: a tombstone entry through the regular
		// row-cache allocation site, invalidated almost immediately
		// by subsequent writes.
		th.Call(35, "RowCache", "put")
		tomb, err := th.Alloc(42, cacheEntrySize)
		th.Return()
		if err != nil {
			return err
		}
		if err := h.AddRoot(tomb.ID); err != nil {
			return err
		}
		s.tombstones = append(s.tombstones, tomb)
		if len(s.tombstones) > tombstoneCapacity {
			victim := s.tombstones[0]
			s.tombstones = s.tombstones[1:]
			if err := h.RemoveRoot(victim.ID); err != nil {
				return err
			}
		}
	}
	th.Return()

	if s.rnd.Float64() < cacheFillFraction {
		th.Call(24, "RowCache", "put")
		entry, err := th.Alloc(42, cacheEntrySize)
		if err != nil {
			return err
		}
		value, err := th.Alloc(44, s.rnd.SizeAround(cacheValueSize, 0.2))
		if err != nil {
			return err
		}
		th.Return()
		if err := h.AddRoot(entry.ID); err != nil {
			return err
		}
		if err := h.Link(entry.ID, value.ID); err != nil {
			return err
		}
		s.cache = append(s.cache, cacheEntry{obj: entry, expiry: s.env.Now() + cacheTTL})
	}
	// Expire cache entries past their TTL (insertion order is expiry
	// order).
	now := s.env.Now()
	for len(s.cache) > 0 && s.cache[0].expiry <= now {
		victim := s.cache[0]
		s.cache = s.cache[1:]
		if err := h.RemoveRoot(victim.obj.ID); err != nil {
			return err
		}
	}
	th.Work(readWork)
	return nil
}

// ManualProfile implements core.App: the expert's hand-written NG2C
// annotations (§5.4.1). The expert studied the write, flush and cache paths
// and resolved the two conflicts visible there (ByteBuffer and Util). The
// row-cache entry site is pretenured directly — correct under WI and WR,
// but under RI the negative-caching path reaches the same site with
// short-lived tombstones, so the direct annotation mispretenures them: the
// paper's "misplaced manual code changes" that let POLM2 beat manual NG2C
// on Cassandra-RI (§5.4.1).
func (a *App) ManualProfile(workloadName string) (*analyzer.Profile, error) {
	if _, err := mix(workloadName); err != nil {
		return nil, err
	}
	// Generation 1: memtable lifetime. Generation 2: SSTable metadata.
	// Generation 3: row cache.
	p := &analyzer.Profile{
		App:         "Cassandra",
		Workload:    workloadName,
		Generations: 3,
		Conflicts:   2, // the expert found the ByteBuffer and Util conflicts
		Allocs: []analyzer.AllocDirective{
			{Loc: "CommitLog.newSegment:9", Gen: 1, Direct: true},
			{Loc: "Memtable.create:5", Gen: 1, Direct: true},
			{Loc: "Memtable.put:12", Gen: 1, Direct: true},
			{Loc: "Memtable.put:16", Gen: 1, Direct: true},
			{Loc: "ByteBuffer.allocate:2", Gen: 0}, // conflict #1: annotate, anchor below
			{Loc: "SSTableWriter.write:8", Gen: 2, Direct: true},
			{Loc: "SSTableWriter.write:10", Gen: 2, Direct: true},
			{Loc: "SSTableWriter.write:12", Gen: 2, Direct: true},
			{Loc: "Util.copy:2", Gen: 0}, // conflict #2: annotate, anchor below
			{Loc: "CompactionTask.run:9", Gen: 2, Direct: true},
			{Loc: "RowCache.put:42", Gen: 3, Direct: true}, // misplaced under RI
		},
		Calls: []analyzer.CallDirective{
			// Conflict #1 resolved at the write-path call into the
			// shared buffer helper.
			{Loc: "Memtable.put:14", Gen: 1},
			// Conflict #2 resolved at the flush-path call into Util.
			{Loc: "SSTableWriter.write:14", Gen: 2},
		},
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("cassandra: manual profile: %w", err)
	}
	return p, nil
}
