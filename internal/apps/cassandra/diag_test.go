package cassandra

import (
	"testing"
	"time"

	"polm2/internal/core"
)

// TestDiagProfile prints the profiling outcome for manual calibration runs:
//
//	go test ./internal/apps/cassandra/ -run TestDiagProfile -v -tags diag
//
// It is also a real regression test for the Table 1 metrics.
func TestDiagProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling run skipped in -short mode")
	}
	app := New()
	for _, wl := range app.Workloads() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			start := time.Now()
			res, err := core.ProfileApp(app, wl, core.ProfileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			p := res.Profile
			t.Logf("%s: wall=%v simDur=%v cycles=%d snaps=%d", wl,
				time.Since(start).Round(time.Millisecond), res.SimDuration, res.GCCycles, len(res.Snapshots))
			t.Logf("%s: instrumented=%d usedGens=%d conflicts=%d unresolved=%d",
				wl, p.InstrumentedSites(), p.UsedGenerations(), p.Conflicts, p.Unresolved)
			// Table 1 regression: the paper reports 11/11/10 sites,
			// 4 generations and 2/2/3 conflicts for WI/WR/RI (this
			// reproduction measures 11 sites for RI; see
			// EXPERIMENTS.md).
			if got := p.InstrumentedSites(); got != 11 {
				t.Errorf("%s: instrumented sites = %d, want 11", wl, got)
			}
			if got := p.UsedGenerations(); got != 4 {
				t.Errorf("%s: used generations = %d, want 4", wl, got)
			}
			wantConflicts := 2
			if wl == WorkloadRI {
				wantConflicts = 3
			}
			if p.Conflicts != wantConflicts {
				t.Errorf("%s: conflicts = %d, want %d", wl, p.Conflicts, wantConflicts)
			}
			if p.Unresolved != 0 {
				t.Errorf("%s: unresolved conflicts = %d, want 0", wl, p.Unresolved)
			}
			for _, s := range p.Sites {
				t.Logf("  site %-40s gen=%d n=%-8d buckets=%v", s.Trace, s.Gen, s.Allocated, s.Buckets)
			}
			for _, c := range p.Calls {
				t.Logf("  call %-40s gen=%d", c.Loc, c.Gen)
			}
			for _, a := range p.Allocs {
				t.Logf("  alloc %-40s gen=%d direct=%v", a.Loc, a.Gen, a.Direct)
			}
		})
	}
}

// TestDiagProduction compares pause times across collectors and plans on
// one workload — the heart of the paper's Figure 5 story.
func TestDiagProduction(t *testing.T) {
	if testing.Short() {
		t.Skip("production run skipped in -short mode")
	}
	app := New()
	prof, err := core.ProfileApp(app, WorkloadWI, core.ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	manual, err := app.ManualProfile(WorkloadWI)
	if err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		collector string
		plan      core.PlanKind
		profile   interface{}
	}{
		{core.CollectorG1, core.PlanNone, nil},
		{core.CollectorNG2C, core.PlanManual, manual},
		{core.CollectorNG2C, core.PlanPOLM2, prof.Profile},
		{core.CollectorC4, core.PlanNone, nil},
	}
	for _, r := range runs {
		var p = (*struct{})(nil)
		_ = p
		var profilePtr = prof.Profile
		switch r.plan {
		case core.PlanNone:
			profilePtr = nil
		case core.PlanManual:
			profilePtr = manual
		}
		start := time.Now()
		res, err := core.RunApp(app, WorkloadWI, r.collector, r.plan, profilePtr, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-5s %-7s wall=%-8v pauses=%-5d p50=%-10v p99=%-12v p99.9=%-12v max=%-12v ops=%-7d maxMem=%dMB gcs=%d switches=%d",
			r.collector, r.plan, time.Since(start).Round(time.Millisecond),
			res.WarmPauses.Len(),
			res.WarmPauses.Percentile(50), res.WarmPauses.Percentile(99),
			res.WarmPauses.Percentile(99.9), res.WarmPauses.Max(),
			res.WarmOps, res.MaxMemoryBytes>>20, res.GCCycles, res.GenSwitches)
	}
}
