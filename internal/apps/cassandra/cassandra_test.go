package cassandra

import (
	"testing"
	"time"

	"polm2/internal/core"
)

func TestWorkloadsAndMix(t *testing.T) {
	app := New()
	if app.Name() != "Cassandra" {
		t.Fatalf("Name = %q", app.Name())
	}
	if got := app.Workloads(); len(got) != 3 {
		t.Fatalf("Workloads = %v", got)
	}
	tests := []struct {
		workload string
		want     float64
	}{
		{WorkloadWI, 0.75},
		{WorkloadWR, 0.50},
		{WorkloadRI, 0.25},
	}
	for _, tc := range tests {
		got, err := mix(tc.workload)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("mix(%s) = %v, want %v", tc.workload, got, tc.want)
		}
	}
	if _, err := mix("nope"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestRunUnknownWorkloadFails(t *testing.T) {
	_, err := core.RunApp(New(), "nope", core.CollectorG1, core.PlanNone, nil, core.RunOptions{
		Duration: time.Minute,
	})
	if err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestManualProfilesValid(t *testing.T) {
	app := New()
	for _, wl := range app.Workloads() {
		p, err := app.ManualProfile(wl)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid manual profile: %v", wl, err)
		}
		// The paper's Table 1: the expert instrumented 11 sites with
		// 3 pretenuring generations and found 2 conflicts.
		if got := p.InstrumentedSites(); got != 11 {
			t.Errorf("%s: manual sites = %d, want 11", wl, got)
		}
		if p.Conflicts != 2 {
			t.Errorf("%s: manual conflicts = %d, want 2", wl, p.Conflicts)
		}
	}
	if _, err := app.ManualProfile("nope"); err == nil {
		t.Error("unknown workload should fail")
	}
}

// TestShortRunLeavesConsistentHeap drives a short production run and checks
// the heap invariants afterwards — a failure-injection guard for the
// workload's root bookkeeping.
func TestShortRunLeavesConsistentHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("run skipped in -short mode")
	}
	res, err := core.RunApp(New(), WorkloadWR, core.CollectorG1, core.PlanNone, nil, core.RunOptions{
		Duration: 4 * time.Minute,
		Warmup:   time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmOps == 0 {
		t.Fatal("run completed no operations")
	}
	if res.GCCycles == 0 {
		t.Fatal("run triggered no collections")
	}
}

// TestDeterminism checks that two runs with the same seed are identical and
// a different seed diverges.
func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("run skipped in -short mode")
	}
	run := func(seed int64) *core.RunResult {
		res, err := core.RunApp(New(), WorkloadWI, core.CollectorG1, core.PlanNone, nil, core.RunOptions{
			Duration: 3 * time.Minute,
			Warmup:   time.Minute,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if a.WarmOps != b.WarmOps || a.GCCycles != b.GCCycles {
		t.Fatalf("same seed diverged: ops %d/%d cycles %d/%d",
			a.WarmOps, b.WarmOps, a.GCCycles, b.GCCycles)
	}
	pa, pb := a.Pauses, b.Pauses
	if len(pa) != len(pb) {
		t.Fatalf("same seed produced %d vs %d pauses", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("pause %d differs: %+v vs %+v", i, pa[i], pb[i])
		}
	}
	c := run(8)
	if c.WarmOps == a.WarmOps && c.GCCycles == a.GCCycles && len(c.Pauses) == len(a.Pauses) {
		t.Log("different seed produced identical summary (unlikely but not impossible)")
	}
}

// TestPretenuredPlacement verifies that under the manual plan, memtable
// cells actually land outside the young generation.
func TestPretenuredPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("run skipped in -short mode")
	}
	app := New()
	manual, err := app.ManualProfile(WorkloadWI)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunApp(app, WorkloadWI, core.CollectorNG2C, core.PlanManual, manual, core.RunOptions{
		Duration: 3 * time.Minute,
		Warmup:   time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GenSwitches == 0 {
		t.Fatal("manual plan performed no generation switches")
	}
	// Pretenuring must reduce copying versus G1 on the same workload.
	g1Res, err := core.RunApp(app, WorkloadWI, core.CollectorG1, core.PlanNone, nil, core.RunOptions{
		Duration: 3 * time.Minute,
		Warmup:   time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	var g1Copied, ng2cCopied uint64
	for _, p := range g1Res.Pauses {
		g1Copied += p.BytesCopied
	}
	for _, p := range res.Pauses {
		ng2cCopied += p.BytesCopied
	}
	if ng2cCopied >= g1Copied {
		t.Fatalf("pretenuring did not reduce copying: NG2C %d vs G1 %d bytes", ng2cCopied, g1Copied)
	}
}
