// Package polm2 is a Go reproduction of POLM2 (Bruno & Ferreira,
// "POLM2: Automatic Profiling for Object Lifetime-Aware Memory Management
// for HotSpot Big Data Applications", Middleware '17).
//
// POLM2 is a profiler that learns, per allocation site, how long a big-data
// application's objects live, and instruments the application so a
// pretenuring garbage collector (NG2C) allocates objects with similar
// lifetimes in the same generation — cutting stop-the-world pause times
// without any programmer effort.
//
// Nothing in the paper's stack exists in Go (HotSpot, G1, NG2C, CRIU), so
// this package drives a faithful discrete-event simulation of that stack
// (see DESIGN.md) while implementing the paper's actual contribution — the
// Recorder, Dumper, Analyzer (STTree + conflict resolution) and
// Instrumenter — for real.
//
// # Quick start
//
//	app := polm2.Cassandra()
//	prof, err := polm2.ProfileApp(app, "WI", polm2.ProfileOptions{})
//	// handle err
//	res, err := polm2.RunApp(app, "WI", polm2.CollectorNG2C,
//		polm2.PlanPOLM2, prof.Profile, polm2.RunOptions{})
//	// res.WarmPauses holds the pause-time distribution
//
// The two phases mirror the paper's §3.5: ProfileApp runs the workload with
// the Recorder and Dumper attached and analyzes the records into a Profile;
// RunApp executes the production phase with the Instrumenter applying that
// profile under the chosen collector.
package polm2

import (
	"io"

	"polm2/internal/analyzer"
	"polm2/internal/apps/cassandra"
	"polm2/internal/apps/graphchi"
	"polm2/internal/apps/lucene"
	"polm2/internal/bench"
	"polm2/internal/core"
	"polm2/internal/fleetclient"
	"polm2/internal/online"
	"polm2/internal/profilestore"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Profile is an application allocation profile: the output of the
	// profiling phase and the input of the production phase.
	Profile = analyzer.Profile
	// AllocDirective and CallDirective are the profile's instrumentation
	// directives.
	AllocDirective = analyzer.AllocDirective
	CallDirective  = analyzer.CallDirective
	// AnalyzerOptions tunes the Analyzer (estimators, thresholds,
	// ablation toggles).
	AnalyzerOptions = analyzer.Options
	// App is a simulated application with evaluation workloads.
	App = core.App
	// Env is the environment a workload runs in.
	Env = core.Env
	// ProfileOptions and ProfileResult parameterize and describe the
	// profiling phase.
	ProfileOptions = core.ProfileOptions
	ProfileResult  = core.ProfileResult
	// RunOptions and RunResult parameterize and describe a production
	// run.
	RunOptions = core.RunOptions
	RunResult  = core.RunResult
	// PlanKind names how a production run was instrumented.
	PlanKind = core.PlanKind
	// BenchConfig and BenchSession drive the paper's evaluation harness.
	BenchConfig  = bench.Config
	BenchSession = bench.Session
	// BenchTarget is one (application, workload) evaluation pair.
	BenchTarget = bench.Target
	// BenchParallelOptions configures the parallel experiment runner.
	BenchParallelOptions = bench.ParallelOptions
	// BenchReport describes one runner invocation: rendered experiment
	// outputs (deterministic) plus per-simulation timings.
	BenchReport = bench.Report
)

// Collector names.
const (
	CollectorG1   = core.CollectorG1
	CollectorNG2C = core.CollectorNG2C
	CollectorC4   = core.CollectorC4
)

// Plan kinds.
const (
	PlanNone   = core.PlanNone
	PlanPOLM2  = core.PlanPOLM2
	PlanManual = core.PlanManual
)

// ProfileApp runs the profiling phase (§3.5): the workload executes with
// the Recorder streaming allocation records and the Dumper snapshotting the
// heap after every GC cycle; the Analyzer turns both into a Profile.
func ProfileApp(app App, workload string, opts ProfileOptions) (*ProfileResult, error) {
	return core.ProfileApp(app, workload, opts)
}

// RunApp executes the production phase: the workload runs under the named
// collector, optionally instrumented with a profile (POLM2's or a
// hand-written one). A nil profile runs the unmodified application.
func RunApp(app App, workload, collector string, plan PlanKind, profile *Profile, opts RunOptions) (*RunResult, error) {
	return core.RunApp(app, workload, collector, plan, profile, opts)
}

// LoadProfile reads a profile saved with Profile.Save.
func LoadProfile(path string) (*Profile, error) {
	return analyzer.LoadProfile(path)
}

// Cassandra returns the Apache Cassandra model (workloads WI, WR, RI).
func Cassandra() App { return cassandra.New() }

// Lucene returns the Apache Lucene model (workload "default").
func Lucene() App { return lucene.New() }

// GraphChi returns the GraphChi model (workloads CC, PR).
func GraphChi() App { return graphchi.New() }

// Apps returns all built-in application models.
func Apps() []App {
	return []App{Cassandra(), Lucene(), GraphChi()}
}

// AppByName returns the built-in application with the given name, or nil.
func AppByName(name string) App {
	for _, app := range Apps() {
		if app.Name() == name {
			return app
		}
	}
	return nil
}

// NewBenchSession builds an evaluation session that regenerates the paper's
// tables and figures.
func NewBenchSession(cfg BenchConfig) *BenchSession {
	return bench.NewSession(cfg)
}

// BenchTargets returns the paper's six evaluation workloads.
func BenchTargets() []BenchTarget { return bench.Targets() }

// BenchExperiments lists the runnable experiment names (table1, fig3..fig9,
// ablations).
func BenchExperiments() []string { return bench.ExperimentNames() }

// RunBenchAll regenerates every table and figure into w.
func RunBenchAll(cfg BenchConfig, w io.Writer) error {
	return bench.NewSession(cfg).RunAll(w)
}

// RunBenchExperiments executes the named experiments on a bounded worker
// pool, writing rendered output to w. Results are deterministic: for a
// fixed config the bytes written depend only on the experiment names, never
// on the worker count. See bench.Session.RunExperiments.
func RunBenchExperiments(cfg BenchConfig, names []string, w io.Writer, opts BenchParallelOptions) (*BenchReport, error) {
	return bench.NewSession(cfg).RunExperiments(names, w, opts)
}

// DeriveSeed maps a base seed and a list of labels to a stable, well-mixed
// per-run seed — the derivation every benchmark simulation seeds its RNG
// with.
func DeriveSeed(base int64, labels ...string) int64 {
	return core.DeriveSeed(base, labels...)
}

// Online profiling (continuous re-analysis and plan hot-swaps; see
// internal/online).
type (
	// OnlineOptions parameterizes a continuously profiled run.
	OnlineOptions = online.Options
	// OnlineResult describes it, including every plan update.
	OnlineResult = online.Result
	// PlanUpdate is one runtime re-instrumentation.
	PlanUpdate = online.PlanUpdate
	// FleetEvent is one fleet sync that could not install a fresh
	// daemon plan.
	FleetEvent = online.FleetEvent
)

// RunOnline executes a workload with the Recorder and Dumper attached in
// production, re-analyzing and hot-swapping the instrumentation plan every
// re-profile interval.
func RunOnline(app App, workload string, opts OnlineOptions) (*OnlineResult, error) {
	return online.Run(app, workload, opts)
}

// Profile repositories (§3.5's one-profile-per-workload deployment model).
type (
	// ProfileStore is an on-disk repository of allocation profiles.
	ProfileStore = profilestore.Store
	// ProfileKey identifies one stored profile.
	ProfileKey = profilestore.Key
)

// ErrProfileNotFound reports a missing profile in a ProfileStore.
var ErrProfileNotFound = profilestore.ErrNotFound

// OpenProfileStore opens (creating if needed) a profile repository at dir.
func OpenProfileStore(dir string) (*ProfileStore, error) {
	return profilestore.Open(dir)
}

// Fleet plan distribution (the polm2d daemon and its client; see
// internal/planserver and internal/fleetclient).
type (
	// FleetClient talks to a polm2d plan daemon: conditional plan
	// fetches, evidence uploads, deterministic backoff, last-good-plan
	// fallback. It satisfies OnlineOptions.Fleet.
	FleetClient = fleetclient.Client
	// FleetClientOptions parameterizes a FleetClient.
	FleetClientOptions = fleetclient.Options
)

// NewFleetClient builds a client for a polm2d daemon.
func NewFleetClient(opts FleetClientOptions) (*FleetClient, error) {
	return fleetclient.New(opts)
}

// MergeProfiles merges per-instance profiling evidence into one fleet-wide
// profile. The merge is deterministic and order-independent: any permutation
// or incremental regrouping of the same profiles yields the same result.
func MergeProfiles(opts AnalyzerOptions, profiles ...*Profile) (*Profile, error) {
	return analyzer.MergeProfiles(opts, profiles...)
}

// RenderSTTree renders a profile's stack-trace tree as text — the paper's
// Figure 2.
func RenderSTTree(p *Profile, w io.Writer) error {
	return analyzer.RenderSTTree(p, w)
}

// RenderDOT renders the same tree in Graphviz DOT form.
func RenderDOT(p *Profile, w io.Writer) error {
	return analyzer.RenderDOT(p, w)
}
