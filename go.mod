module polm2

go 1.22
